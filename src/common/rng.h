// Deterministic random number generation.
//
// The paper's translation rules require programs to be deterministic so that
// re-execution during recovery reproduces the same state (§4.1). Workload
// generators therefore use an explicitly seeded xoshiro256** generator rather
// than std::random_device.
#ifndef SDG_COMMON_RNG_H_
#define SDG_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace sdg {

// xoshiro256** by Blackman & Vigna; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double NextDoubleIn(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

// Zipf-distributed integers in [0, n). Used by the synthetic workload
// generators that stand in for the Netflix and Wikipedia datasets: access
// skew, not the literal data, drives state behaviour.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    // Precompute the normalisation constant and the constants of the
    // rejection-free inverse method from Gray et al. (the YCSB generator).
    for (uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < zeta2_) {
      return 1;
    }
    auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_ = 0.0;
  double zeta2_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace sdg

#endif  // SDG_COMMON_RNG_H_
