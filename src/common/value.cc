#include "src/common/value.h"

#include <algorithm>
#include <sstream>

#include "src/common/hash.h"

namespace sdg {

void Value::Serialize(BinaryWriter& w) const {
  w.Write<uint8_t>(static_cast<uint8_t>(type()));
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kInt:
      w.Write<int64_t>(AsInt());
      break;
    case Type::kDouble:
      w.Write<double>(AsDouble());
      break;
    case Type::kString:
      w.WriteString(AsString());
      break;
    case Type::kDoubleVector:
      w.WriteVector<double>(AsDoubleVector());
      break;
    case Type::kIntVector:
      w.WriteVector<int64_t>(AsIntVector());
      break;
  }
}

Result<Value> Value::Deserialize(BinaryReader& r) {
  SDG_ASSIGN_OR_RETURN(uint8_t tag, r.Read<uint8_t>());
  switch (static_cast<Type>(tag)) {
    case Type::kNull:
      return Value();
    case Type::kInt: {
      SDG_ASSIGN_OR_RETURN(int64_t v, r.Read<int64_t>());
      return Value(v);
    }
    case Type::kDouble: {
      SDG_ASSIGN_OR_RETURN(double v, r.Read<double>());
      return Value(v);
    }
    case Type::kString: {
      SDG_ASSIGN_OR_RETURN(std::string v, r.ReadString());
      return Value(std::move(v));
    }
    case Type::kDoubleVector: {
      SDG_ASSIGN_OR_RETURN(std::vector<double> v, r.ReadVector<double>());
      return Value(std::move(v));
    }
    case Type::kIntVector: {
      SDG_ASSIGN_OR_RETURN(std::vector<int64_t> v, r.ReadVector<int64_t>());
      return Value(std::move(v));
    }
  }
  return Status(StatusCode::kDataLoss, "unknown value type tag");
}

uint64_t Value::Hash() const {
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kInt:
      return MixHash64(static_cast<uint64_t>(AsInt()));
    case Type::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return MixHash64(bits);
    }
    case Type::kString:
      return Fnv1a64(AsString());
    case Type::kDoubleVector: {
      uint64_t h = 0x1234;
      for (double d : AsDoubleVector()) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        h = HashCombine(h, bits);
      }
      return h;
    }
    case Type::kIntVector: {
      uint64_t h = 0x5678;
      for (int64_t v : AsIntVector()) {
        h = HashCombine(h, static_cast<uint64_t>(v));
      }
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kInt:
      os << AsInt();
      break;
    case Type::kDouble:
      os << AsDouble();
      break;
    case Type::kString:
      os << '"' << AsString() << '"';
      break;
    case Type::kDoubleVector: {
      os << "[";
      const auto& v = AsDoubleVector();
      for (size_t i = 0; i < v.size(); ++i) {
        os << (i ? "," : "") << v[i];
      }
      os << "]";
      break;
    }
    case Type::kIntVector: {
      os << "[";
      const auto& v = AsIntVector();
      for (size_t i = 0; i < v.size(); ++i) {
        os << (i ? "," : "") << v[i];
      }
      os << "]";
      break;
    }
  }
  return os.str();
}

void Tuple::Serialize(BinaryWriter& w) const {
  w.Write<uint32_t>(static_cast<uint32_t>(values_.size()));
  for (const auto& v : values_) {
    v.Serialize(w);
  }
}

Result<Tuple> Tuple::Deserialize(BinaryReader& r) {
  SDG_ASSIGN_OR_RETURN(uint32_t count, r.Read<uint32_t>());
  std::vector<Value> values;
  // A hostile count must not drive a huge allocation: each value occupies at
  // least one byte, so remaining() bounds any honest count.
  values.reserve(std::min<size_t>(count, r.remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    SDG_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

std::vector<uint8_t> Tuple::ToBytes() const {
  BinaryWriter w;
  Serialize(w);
  return std::move(w).TakeBuffer();
}

Result<Tuple> Tuple::FromBytes(const std::vector<uint8_t>& bytes) {
  BinaryReader r(bytes);
  return Deserialize(r);
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    os << (i ? ", " : "") << values_[i].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace sdg
