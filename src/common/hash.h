// Hashing utilities. All partitioning in the SDG runtime (key-partitioned
// dispatch, checkpoint chunking) goes through these functions so that
// partition placement is deterministic across runs.
#ifndef SDG_COMMON_HASH_H_
#define SDG_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace sdg {

// FNV-1a 64-bit over a byte range.
constexpr uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<uint8_t>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

constexpr uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

// SplitMix64 finaliser: a fast, well-mixed integer hash.
constexpr uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return MixHash64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

}  // namespace sdg

#endif  // SDG_COMMON_HASH_H_
