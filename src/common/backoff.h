// Exponential backoff schedule for redial loops.
//
// Delays start at initial_ms and double per consecutive failure up to
// max_ms, each with +/-jitter so a fleet of workers that lost the same
// gateway does not redial in lockstep forever. Reset() after a successful
// attempt. The jitter stream is a seeded xorshift, so a schedule is fully
// deterministic given its Options — which is what the unit test pins down.
#ifndef SDG_COMMON_BACKOFF_H_
#define SDG_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

namespace sdg {

class Backoff {
 public:
  struct Options {
    int initial_ms = 200;
    int max_ms = 5000;
    double jitter = 0.2;  // +/- fraction of the base delay, uniform
    uint64_t seed = 0x9e3779b97f4a7c15ull;
  };

  Backoff() : Backoff(Options()) {}
  explicit Backoff(Options options)
      : options_(options), base_ms_(options.initial_ms), rng_(options.seed | 1) {}

  // Delay to sleep before the next attempt; advances the schedule.
  int NextDelayMs() {
    const int base = base_ms_;
    base_ms_ = std::min(options_.max_ms, base_ms_ * 2);
    if (options_.jitter <= 0.0) {
      return std::max(1, base);
    }
    const double u = NextUnit();  // [0, 1)
    const double scaled = base * (1.0 + options_.jitter * (2.0 * u - 1.0));
    return std::max(1, static_cast<int>(scaled));
  }

  void Reset() { base_ms_ = options_.initial_ms; }

  // Current un-jittered delay (what the next NextDelayMs draws around).
  int base_ms() const { return base_ms_; }

 private:
  double NextUnit() {
    rng_ ^= rng_ >> 12;
    rng_ ^= rng_ << 25;
    rng_ ^= rng_ >> 27;
    const uint64_t x = rng_ * 0x2545F4914F6CDD1Dull;
    return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
  }

  Options options_;
  int base_ms_;
  uint64_t rng_;
};

}  // namespace sdg

#endif  // SDG_COMMON_BACKOFF_H_
