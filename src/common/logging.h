// Minimal thread-safe leveled logger.
//
// Usage: SDG_LOG(kInfo) << "deployed " << n << " task elements";
// The default minimum level is kWarning so that tests and benchmarks stay
// quiet; raise verbosity with Logger::SetMinLevel.
#ifndef SDG_COMMON_LOGGING_H_
#define SDG_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string_view>

namespace sdg {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

std::string_view LogLevelName(LogLevel level);

class Logger {
 public:
  static void SetMinLevel(LogLevel level);
  static LogLevel min_level();

  // Writes one formatted line to stderr under a global mutex.
  static void Write(LogLevel level, std::string_view file, int line,
                    std::string_view message);
};

namespace internal {

// Collects one log statement's stream output and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SDG_LOG(severity)                                                 \
  for (bool _sdg_log_once =                                               \
           ::sdg::LogLevel::severity >= ::sdg::Logger::min_level();       \
       _sdg_log_once; _sdg_log_once = false)                              \
  ::sdg::internal::LogMessage(::sdg::LogLevel::severity, __FILE__,        \
                              __LINE__)                                   \
      .stream()

// Fatal-on-false invariant check, active in all build modes.
#define SDG_CHECK(cond)                                                    \
  for (bool _sdg_check_failed = !(cond); _sdg_check_failed;                \
       _sdg_check_failed = false)                                          \
  ::sdg::internal::LogMessage(::sdg::LogLevel::kFatal, __FILE__, __LINE__) \
          .stream()                                                        \
      << "Check failed: " #cond " "

}  // namespace sdg

#endif  // SDG_COMMON_LOGGING_H_
