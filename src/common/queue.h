// Bounded blocking MPMC queue: the "network link" of the simulated cluster.
//
// A queue can be closed (no more producers) and drained, which lets node
// shutdown and failure injection propagate cleanly through a pipeline.
#ifndef SDG_COMMON_QUEUE_H_
#define SDG_COMMON_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace sdg {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once the queue is closed AND drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Pop with a timeout; nullopt on timeout or on closed-and-drained.
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // After Close, pushes fail and pops drain remaining items then return
  // nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Drops queued items and closes; used for failure injection.
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      items_.clear();
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool Empty() const { return size() == 0; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace sdg

#endif  // SDG_COMMON_QUEUE_H_
