// Bounded blocking MPMC queue: the "network link" of the simulated cluster.
//
// A queue can be closed (no more producers) and drained, which lets node
// shutdown and failure injection propagate cleanly through a pipeline.
//
// The hot path is batch-oriented: PushAll/PopAll move whole batches under a
// single lock acquisition with a single condvar notification, and size() is
// a relaxed-atomic mirror maintained under the lock — load probes (JSQ
// routing, the scaling monitor, backpressure checks) never contend with
// producers and consumers.
#ifndef SDG_COMMON_QUEUE_H_
#define SDG_COMMON_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace sdg {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Installs a callback invoked UNDER the queue lock every time items are
  // added. Because Close()/Abort() take the same lock, once either returns no
  // further callback invocation can start — which is what makes it safe for
  // the callback to mark a schedulable consumer ready (executor.h) without a
  // notify-after-push use-after-free. Set before the first producer runs.
  void SetReadyCallback(std::function<void()> fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    on_ready_ = std::move(fn);
  }

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    PublishSize();
    NotifyReadyLocked();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Moves all of `items` into the queue, blocking while full; each chunk
  // that fits is enqueued under one lock hold with one notification.
  // Returns the number enqueued — less than items.size() only if the queue
  // was closed mid-push (the remainder is dropped, matching Push).
  size_t PushAll(std::vector<T>&& items) {
    size_t pushed = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (pushed < items.size()) {
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) {
        break;
      }
      while (pushed < items.size() && items_.size() < capacity_) {
        items_.push_back(std::move(items[pushed]));
        ++pushed;
      }
      PublishSize();
      NotifyReadyLocked();
      not_empty_.notify_one();
    }
    return pushed;
  }

  // Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
      PublishSize();
      NotifyReadyLocked();
    }
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking batch push: moves items starting at `offset` until the queue
  // is full, returning the new offset. Never waits; a closed queue returns
  // `items.size()` with `*closed` set so callers can stop retrying (the
  // remainder is dropped, matching Push/PushAll semantics on close).
  size_t TryPushSome(std::vector<T>& items, size_t offset, bool* closed) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
      *closed = true;
      return offset;
    }
    *closed = false;
    size_t before = offset;
    while (offset < items.size() && items_.size() < capacity_) {
      items_.push_back(std::move(items[offset]));
      ++offset;
    }
    if (offset != before) {
      PublishSize();
      NotifyReadyLocked();
      lock.unlock();
      not_empty_.notify_one();
    }
    return offset;
  }

  // Bounded wait for free capacity (or close); used by producers that help
  // drain the consumer instead of parking indefinitely. Returns true when a
  // slot is (momentarily) free or the queue is closed.
  bool WaitNotFullFor(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return not_full_.wait_for(
        lock, timeout, [&] { return items_.size() < capacity_ || closed_; });
  }

  // Blocks while empty. Returns nullopt once the queue is closed AND drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    PublishSize();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking batch pop: moves up to `max` items into `out` under one lock
  // acquisition, returning the number moved (0 when momentarily empty —
  // unlike PopAll this never waits, which is what an executor slice needs).
  size_t TryPopAll(std::deque<T>& out, size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    size_t n = std::min(max, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    PublishSize();
    lock.unlock();
    if (n > 0) {
      not_full_.notify_all();
    }
    return n;
  }

  // Blocks while empty, then moves up to `max` items into `out` under one
  // lock acquisition. Returns the number moved; 0 means closed-and-drained.
  size_t PopAll(std::deque<T>& out, size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    size_t n = std::min(max, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    PublishSize();
    lock.unlock();
    if (n > 0) {
      // n slots freed: wake every producer blocked on capacity.
      not_full_.notify_all();
    }
    return n;
  }

  // Pop with a timeout; nullopt on timeout or on closed-and-drained.
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    PublishSize();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    PublishSize();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // After Close, pushes fail and pops drain remaining items then return
  // nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Drops queued items and closes; used for failure injection. Returns the
  // number of items discarded so callers can settle any per-item accounting
  // (a second Abort returns 0).
  size_t Abort() {
    size_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      dropped = items_.size();
      items_.clear();
      PublishSize();
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return dropped;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  // Approximate size: a relaxed mirror of the exact size, written only under
  // the queue lock, so it is never negative and never stale by more than the
  // in-progress operation. Load probes pay no lock.
  size_t size() const { return approx_size_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

  bool Empty() const { return size() == 0; }

 private:
  // Requires mutex_ held.
  void PublishSize() {
    approx_size_.store(items_.size(), std::memory_order_relaxed);
  }

  // Requires mutex_ held; fires after items were added.
  void NotifyReadyLocked() {
    if (on_ready_) {
      on_ready_();
    }
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::atomic<size_t> approx_size_{0};
  std::function<void()> on_ready_;
  bool closed_ = false;
};

}  // namespace sdg

#endif  // SDG_COMMON_QUEUE_H_
