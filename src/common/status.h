// Status / Result error-handling primitives for the SDG library.
//
// The library does not throw exceptions across module boundaries; fallible
// operations return Status (or Result<T> when they produce a value).
#ifndef SDG_COMMON_STATUS_H_
#define SDG_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sdg {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kAborted,
  kDataLoss,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
};

// Human-readable name of a status code (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeName(StatusCode code);

// A cheap value type carrying an error code and message. The OK status carries
// no message and is the default-constructed value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status AbortedError(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
inline Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

// Propagates a non-OK status to the caller.
#define SDG_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::sdg::Status _sdg_status = (expr);    \
    if (!_sdg_status.ok()) {               \
      return _sdg_status;                  \
    }                                      \
  } while (false)

// Assigns the value of a Result expression or propagates its status.
#define SDG_ASSIGN_OR_RETURN(lhs, expr)             \
  SDG_ASSIGN_OR_RETURN_IMPL_(                       \
      SDG_STATUS_CONCAT_(_sdg_result, __LINE__), lhs, expr)
#define SDG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()
#define SDG_STATUS_CONCAT_(a, b) SDG_STATUS_CONCAT_IMPL_(a, b)
#define SDG_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace sdg

#endif  // SDG_COMMON_STATUS_H_
