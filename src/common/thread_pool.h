// Fixed-size thread pool used for parallel checkpoint chunk serialisation
// (§5, step B2 of the m-to-n backup protocol) and other fan-out work.
#ifndef SDG_COMMON_THREAD_POOL_H_
#define SDG_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdg {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks run in FIFO order across the worker threads.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished running.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace sdg

#endif  // SDG_COMMON_THREAD_POOL_H_
