#include "src/common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace sdg {

std::string PercentileSummary::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f p5=%.3f p25=%.3f p50=%.3f p75=%.3f p95=%.3f",
                static_cast<unsigned long long>(count), mean, p5, p25, p50, p75,
                p95);
  return buf;
}

std::string PercentileSummary::ToJson() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"mean\": %.3f, \"p5\": %.3f, \"p25\": %.3f,"
                " \"p50\": %.3f, \"p75\": %.3f, \"p95\": %.3f, \"p99\": %.3f}",
                static_cast<unsigned long long>(count), mean, p5, p25, p50, p75,
                p95, p99);
  return buf;
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<size_t>(std::floor(rank));
  auto hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

PercentileSummary Histogram::Snapshot() const {
  std::vector<double> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = samples_;
  }
  PercentileSummary s;
  s.count = copy.size();
  if (copy.empty()) {
    return s;
  }
  std::sort(copy.begin(), copy.end());
  s.min = copy.front();
  s.max = copy.back();
  s.mean = std::accumulate(copy.begin(), copy.end(), 0.0) /
           static_cast<double>(copy.size());
  s.p5 = PercentileOfSorted(copy, 5);
  s.p25 = PercentileOfSorted(copy, 25);
  s.p50 = PercentileOfSorted(copy, 50);
  s.p75 = PercentileOfSorted(copy, 75);
  s.p95 = PercentileOfSorted(copy, 95);
  s.p99 = PercentileOfSorted(copy, 99);
  return s;
}

std::string ExecutorStats::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "workers=%zu tasks=%llu steals=%llu ready=%llu",
                per_worker.size(), static_cast<unsigned long long>(tasks_run),
                static_cast<unsigned long long>(steals),
                static_cast<unsigned long long>(ready_queue_depth));
  std::string out = buf;
  out += " [";
  for (size_t w = 0; w < per_worker.size(); ++w) {
    std::snprintf(buf, sizeof(buf), "%sw%zu %llu/%llu", w == 0 ? "" : " ", w,
                  static_cast<unsigned long long>(per_worker[w].tasks_run),
                  static_cast<unsigned long long>(per_worker[w].steals));
    out += buf;
  }
  out += "]";
  return out;
}

double ThroughputMeter::TakeRate() {
  int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  uint64_t count = counter_.value();
  std::lock_guard<std::mutex> lock(mutex_);
  if (last_ns_ == 0) {
    last_ns_ = now_ns;
    last_count_ = count;
    return 0.0;
  }
  double elapsed = static_cast<double>(now_ns - last_ns_) * 1e-9;
  double rate = elapsed <= 0 ? 0.0
                             : static_cast<double>(count - last_count_) / elapsed;
  last_ns_ = now_ns;
  last_count_ = count;
  return rate;
}

}  // namespace sdg
