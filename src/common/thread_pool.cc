#include "src/common/thread_pool.h"

namespace sdg {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [&] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] { return !tasks_.empty() || shutdown_; });
      if (tasks_.empty()) {
        return;  // shutdown_ with no work left
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace sdg
