#include "src/serve/loadgen.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/serve/client.h"

namespace sdg::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Deterministic per-thread generator (xorshift64*).
struct Rng {
  uint64_t s;
  uint64_t Next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
  double NextUnit() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }
};

struct Shared {
  const LoadGenOptions* options = nullptr;
  Histogram latency_ms;
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> overloaded{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> replica{0};
};

net::RequestMsg MakeRequest(const LoadGenOptions& o, Rng& rng,
                            const std::string& value) {
  net::RequestMsg req;
  req.key = static_cast<int64_t>(rng.Next() % static_cast<uint64_t>(
                                                  o.key_space));
  if (rng.NextUnit() < o.get_fraction) {
    req.op = net::kOpGet;
    if (rng.NextUnit() < o.stale_fraction) {
      req.flags |= net::kReadStale;
      req.max_epoch_lag = o.max_epoch_lag;
    }
  } else {
    req.op = net::kOpPut;
    req.value = value;
  }
  return req;
}

void Count(Shared& sh, const net::ResponseMsg& resp, double ms) {
  if (resp.code == net::kRespOk) {
    sh.ok.fetch_add(1, std::memory_order_relaxed);
    sh.latency_ms.Record(ms);
    if ((resp.flags & net::kRespFromReplica) != 0) {
      sh.replica.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (resp.code == net::kRespOverloaded) {
    sh.overloaded.fetch_add(1, std::memory_order_relaxed);
  } else {
    sh.errors.fetch_add(1, std::memory_order_relaxed);
  }
}

// Closed loop: one outstanding request per connection.
void ClosedLoop(Shared& sh, int index) {
  const LoadGenOptions& o = *sh.options;
  KvClient client({o.host, o.port});
  if (Status st = client.Connect(); !st.ok()) {
    std::fprintf(stderr, "loadgen conn %d connect: %s\n", index,
                 st.ToString().c_str());
    sh.errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Rng rng{o.seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(index) + 1};
  std::string value(static_cast<size_t>(o.value_bytes), 'v');
  auto end = Clock::now() + std::chrono::milliseconds(o.duration_ms);
  while (Clock::now() < end) {
    net::RequestMsg req = MakeRequest(o, rng, value);
    req.request_id = client.NextRequestId();
    auto t0 = Clock::now();
    if (!client.Send(req).ok()) {
      sh.errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    sh.sent.fetch_add(1, std::memory_order_relaxed);
    auto resp = client.Recv();
    if (!resp.ok()) {
      sh.errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Count(sh, *resp,
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
  }
}

// Open loop: a paced sender and a blocking receiver share the connection.
// Latency runs from the *scheduled* send time so the queueing delay of a
// saturated service is visible (no coordinated omission).
void OpenLoop(Shared& sh, int index) {
  const LoadGenOptions& o = *sh.options;
  KvClient client({o.host, o.port});
  if (Status st = client.Connect(); !st.ok()) {
    std::fprintf(stderr, "loadgen conn %d connect: %s\n", index,
                 st.ToString().c_str());
    sh.errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::mutex mu;
  std::unordered_map<uint64_t, Clock::time_point> inflight;  // id -> scheduled
  std::atomic<bool> sender_done{false};

  std::thread receiver([&] {
    for (;;) {
      auto resp = client.Recv();
      if (!resp.ok()) {
        return;  // wire closed or timeout: sender counts leftovers
      }
      double ms = 0;
      bool known = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = inflight.find(resp->request_id);
        if (it != inflight.end()) {
          ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                         it->second)
                   .count();
          inflight.erase(it);
          known = true;
        }
      }
      if (known) {
        Count(sh, *resp, ms);
      }
      if (sender_done.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(mu);
        if (inflight.empty()) {
          return;
        }
      }
    }
  });

  Rng rng{o.seed * 0xD1B54A32D192ED03ULL + static_cast<uint64_t>(index) + 1};
  std::string value(static_cast<size_t>(o.value_bytes), 'v');
  double interval_ns = 1e9 * o.connections / o.offered_qps;
  auto start = Clock::now();
  auto end = start + std::chrono::milliseconds(o.duration_ms);
  uint64_t scheduled_count = 0;
  while (Clock::now() < end) {
    auto due = start + std::chrono::nanoseconds(static_cast<int64_t>(
                           interval_ns * static_cast<double>(scheduled_count)));
    std::this_thread::sleep_until(due);
    ++scheduled_count;
    {
      // Pipeline cap: stall (time keeps charging against `due`).
      std::unique_lock<std::mutex> lock(mu);
      while (inflight.size() >= static_cast<size_t>(o.pipeline)) {
        lock.unlock();
        if (Clock::now() >= end) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        lock.lock();
      }
    }
    net::RequestMsg req = MakeRequest(o, rng, value);
    req.request_id = client.NextRequestId();
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight[req.request_id] = due;
    }
    if (Status st = client.Send(req); !st.ok()) {
      std::fprintf(stderr, "loadgen conn %d send: %s\n", index,
                   st.ToString().c_str());
      sh.errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    sh.sent.fetch_add(1, std::memory_order_relaxed);
  }
  sender_done.store(true, std::memory_order_release);
  // Bounded drain, then cut the wire so a receiver blocked in Recv wakes up
  // instead of riding out its recv timeout.
  auto drain_deadline = Clock::now() + std::chrono::milliseconds(2000);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (inflight.empty()) {
        break;
      }
    }
    if (Clock::now() >= drain_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  client.Shutdown();
  receiver.join();
  size_t leftover;
  {
    std::lock_guard<std::mutex> lock(mu);
    leftover = inflight.size();
  }
  sh.errors.fetch_add(leftover, std::memory_order_relaxed);
  client.Close();
}

}  // namespace

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  if (options.port == 0) {
    return Status(StatusCode::kInvalidArgument, "loadgen: port required");
  }
  if (options.connections < 1) {
    return Status(StatusCode::kInvalidArgument, "loadgen: connections < 1");
  }
  Shared sh;
  sh.options = &options;
  auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.connections));
  for (int i = 0; i < options.connections; ++i) {
    threads.emplace_back([&sh, i] {
      if (sh.options->offered_qps > 0) {
        OpenLoop(sh, i);
      } else {
        ClosedLoop(sh, i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  LoadGenReport report;
  report.sent = sh.sent.load();
  report.ok = sh.ok.load();
  report.overloaded = sh.overloaded.load();
  report.errors = sh.errors.load();
  report.replica_answers = sh.replica.load();
  report.achieved_qps = secs > 0 ? static_cast<double>(report.ok) / secs : 0;
  report.latency_ms = sh.latency_ms.Snapshot();
  return report;
}

}  // namespace sdg::serve
