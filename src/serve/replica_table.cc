#include "src/serve/replica_table.h"

#include "src/common/logging.h"
#include "src/common/value.h"

namespace sdg::serve {

using KvDict = state::KeyedDict<int64_t, std::string>;

ReplicaTable::ReplicaTable(uint32_t partitions) {
  views_.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    views_.push_back(
        std::make_unique<state::ReplicaView>(std::make_unique<KvDict>()));
  }
}

void ReplicaTable::OnEpoch(const net::ReplicaEpochMsg& msg) {
  if (msg.partition >= views_.size()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  state::ReplicaView& view = *views_[msg.partition];
  switch (msg.kind) {
    case net::kEpochAnnounce:
      view.Announce(msg.member_id, msg.epoch);
      owner_depth_.store(msg.queue_depth, std::memory_order_relaxed);
      break;
    case net::kEpochBase: {
      Status st = view.ApplyBase(msg.member_id, msg.epoch, msg.chunks);
      if (!st.ok()) {
        SDG_LOG(kWarning) << "replica base p" << msg.partition
                          << " failed: " << st.ToString();
        view.Invalidate();
        errors_.fetch_add(1, std::memory_order_relaxed);
      } else {
        applied_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case net::kEpochDelta: {
      Status st = view.ApplyDelta(msg.member_id, msg.epoch, msg.chunks);
      if (!st.ok()) {
        // Delta without a matching base (owner change, or the view was
        // invalidated): drop the view and wait for the publisher's re-base.
        view.Invalidate();
        errors_.fetch_add(1, std::memory_order_relaxed);
      } else {
        applied_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    default:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

uint32_t ReplicaTable::PartitionOf(int64_t key) const {
  // Must agree with ElasticHead::Inject routing: tuple[0].Hash() % P.
  return static_cast<uint32_t>(Value(key).Hash() % views_.size());
}

StaleReadResult ReplicaTable::TryGet(int64_t key,
                                     uint64_t max_epoch_lag) const {
  StaleReadResult out;
  const state::ReplicaView& view = *views_[PartitionOf(key)];
  out.admissible = view.ReadWithin(
      max_epoch_lag,
      [&](const state::StateBackend& backend, uint64_t epoch) {
        const auto& dict = static_cast<const KvDict&>(backend);
        out.epoch = epoch;
        if (auto v = dict.Get(key)) {
          out.found = true;
          out.value = std::move(*v);
        }
      });
  return out;
}

}  // namespace sdg::serve
