// Admission control for the serve front door.
//
// The gateway sheds load instead of queueing it: once the load signal (its
// own pending-request queue plus the owning workers' mailbox depth, reported
// piggybacked on replica-feed announces) crosses the high-water mark, new
// requests are rejected with kOverloaded until the signal drains below the
// low-water mark. The gap between the marks is hysteresis — without it the
// controller flaps admit/shed around a single threshold and clients see an
// alternating stream of accepts and rejects instead of a clean brown-out.
#ifndef SDG_SERVE_ADMISSION_H_
#define SDG_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>

namespace sdg::serve {

struct AdmissionOptions {
  // Enter shedding when the observed signal reaches this.
  uint64_t high_water = 4096;
  // Leave shedding when it has drained back to this.
  uint64_t low_water = 1024;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {})
      : options_(options) {}

  // Feeds the current load signal. Cheap; callable from any thread.
  void Observe(uint64_t signal) {
    bool shedding = shedding_.load(std::memory_order_relaxed);
    if (!shedding && signal >= options_.high_water) {
      shedding_.store(true, std::memory_order_relaxed);
    } else if (shedding && signal <= options_.low_water) {
      shedding_.store(false, std::memory_order_relaxed);
    }
  }

  // One admit/shed decision for one request; updates the counters.
  bool Admit() {
    if (shedding_.load(std::memory_order_relaxed)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;
  std::atomic<bool> shedding_{false};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace sdg::serve

#endif  // SDG_SERVE_ADMISSION_H_
