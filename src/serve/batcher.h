// SLO-adaptive batch sizing (AIMD over the batch-size knee).
//
// Injecting requests into the dataflow in batches amortises the per-delivery
// costs (clock ticks, channel locking, wire frames), but past the knee of
// the batch-size/latency curve extra batching only adds queueing delay. The
// right batch size depends on the host and the offered load, so instead of a
// fixed constant the gateway walks it at runtime: completed-request latencies
// accumulate into a window, and each full window moves the batch size by the
// classic AIMD rule —
//
//   p99 > SLO            -> multiplicative decrease (halve)
//   p99 < headroom * SLO -> additive increase (+1/8 of current, min 1)
//   otherwise            -> hold (inside the SLO band)
//
// Decrease is multiplicative because an SLO breach means the controller is
// past the knee and queueing delay compounds; increase is additive so the
// controller creeps back up and oscillates gently around the knee instead of
// slamming between extremes.
#ifndef SDG_SERVE_BATCHER_H_
#define SDG_SERVE_BATCHER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sdg::serve {

struct BatcherOptions {
  double slo_p99_ms = 20.0;
  size_t min_batch = 1;
  size_t max_batch = 512;
  size_t initial_batch = 32;
  // Latency samples per control decision. Small enough to react within a
  // fraction of a second at serve rates, large enough that p99 is not noise.
  size_t window = 128;
  // Grow only when p99 is comfortably under the SLO, so the controller does
  // not ride the breach boundary.
  double headroom = 0.7;
};

class AdaptiveBatcher {
 public:
  explicit AdaptiveBatcher(BatcherOptions options = {});

  // Current batch size for the next flush. Lock-free.
  size_t batch_size() const {
    return batch_.load(std::memory_order_relaxed);
  }

  // One completed request's latency. Every `window` samples the controller
  // takes an AIMD step.
  void RecordLatencyMs(double ms);

  uint64_t grow_steps() const {
    return grows_.load(std::memory_order_relaxed);
  }
  uint64_t shrink_steps() const {
    return shrinks_.load(std::memory_order_relaxed);
  }
  // p99 of the last completed window (0 until one completes).
  double last_window_p99_ms() const;

  const BatcherOptions& options() const { return options_; }

 private:
  const BatcherOptions options_;
  std::atomic<size_t> batch_;
  std::atomic<uint64_t> grows_{0};
  std::atomic<uint64_t> shrinks_{0};
  mutable std::mutex mutex_;
  std::vector<double> window_;
  double last_p99_ms_ = 0;
};

}  // namespace sdg::serve

#endif  // SDG_SERVE_BATCHER_H_
