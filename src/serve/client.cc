#include "src/serve/client.h"

#include <utility>

namespace sdg::serve {

Status KvClient::Connect() {
  SDG_ASSIGN_OR_RETURN(socket_,
                       net::Socket::Connect(options_.host, options_.port));
  socket_.SetRecvTimeout(options_.recv_timeout_ms);
  carry_ = net::FrameDecoder();
  net::RequestMsg ping;
  ping.request_id = NextRequestId();
  ping.op = net::kOpPing;
  SDG_RETURN_IF_ERROR(Send(ping));
  SDG_ASSIGN_OR_RETURN(net::ResponseMsg resp, Recv());
  if (resp.code != net::kRespOk) {
    return Status(StatusCode::kUnavailable, "gateway refused ping");
  }
  return Status::Ok();
}

Status KvClient::Send(const net::RequestMsg& req) {
  return net::WriteFrameBlocking(socket_, net::FrameType::kRequest,
                                 req.Encode());
}

Result<net::ResponseMsg> KvClient::Recv() {
  SDG_ASSIGN_OR_RETURN(net::Frame frame,
                       net::ReadFrameBlocking(socket_, carry_));
  if (frame.type != net::FrameType::kResponse) {
    return Status(StatusCode::kDataLoss, "unexpected frame from gateway");
  }
  return net::ResponseMsg::Decode(frame.payload);
}

Result<net::ResponseMsg> KvClient::Roundtrip(net::RequestMsg req) {
  req.request_id = NextRequestId();
  SDG_RETURN_IF_ERROR(Send(req));
  for (;;) {
    SDG_ASSIGN_OR_RETURN(net::ResponseMsg resp, Recv());
    if (resp.request_id == req.request_id) {
      return resp;
    }
    // A stale id (e.g. a previous sync call that timed out client-side and
    // whose answer arrived late): drop it and keep waiting for ours.
  }
}

Result<net::ResponseMsg> KvClient::Put(int64_t key, std::string value) {
  net::RequestMsg req;
  req.op = net::kOpPut;
  req.key = key;
  req.value = std::move(value);
  return Roundtrip(std::move(req));
}

Result<net::ResponseMsg> KvClient::Del(int64_t key) {
  net::RequestMsg req;
  req.op = net::kOpDel;
  req.key = key;
  return Roundtrip(std::move(req));
}

Result<net::ResponseMsg> KvClient::Get(int64_t key, bool stale,
                                       uint32_t max_epoch_lag) {
  net::RequestMsg req;
  req.op = net::kOpGet;
  req.key = key;
  if (stale) {
    req.flags |= net::kReadStale;
    req.max_epoch_lag = max_epoch_lag;
  }
  return Roundtrip(std::move(req));
}

}  // namespace sdg::serve
