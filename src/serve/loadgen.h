// Load generator for the serve front door.
//
// Two modes matching the two ways a latency/throughput curve is read:
//
//   * closed loop (offered_qps == 0): each connection keeps exactly one
//     request outstanding — measures the service's best-case latency and
//     its self-limited throughput;
//   * open loop (offered_qps > 0): requests are scheduled on a fixed
//     cadence regardless of completions, and latency is measured from the
//     *scheduled* send time, so queueing delay under overload shows up
//     instead of being hidden by coordinated omission. A pipeline cap
//     bounds memory when the service falls behind.
//
// Overload responses (kRespOverloaded) are counted, not retried — the
// report separates them from successes so a bench can show the shed rate
// rising with offered load while the p99 of accepted requests holds.
#ifndef SDG_SERVE_LOADGEN_H_
#define SDG_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>

#include "src/common/metrics.h"
#include "src/common/status.h"

namespace sdg::serve {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connections = 4;
  int duration_ms = 2000;
  // 0 = closed loop; > 0 = open loop at this aggregate rate.
  double offered_qps = 0;
  // Mix: fraction of requests that are gets (rest are puts), and of those
  // gets, the fraction sent with the bounded-stale flag.
  double get_fraction = 0.5;
  double stale_fraction = 0.0;
  uint32_t max_epoch_lag = 2;
  int64_t key_space = 4096;
  int value_bytes = 64;
  // Open loop: max outstanding per connection before the sender stalls
  // (the stall still counts against latency via the scheduled send time).
  int pipeline = 64;
  uint64_t seed = 1;
};

struct LoadGenReport {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t errors = 0;
  uint64_t replica_answers = 0;  // responses flagged kRespFromReplica
  double achieved_qps = 0;       // completed ok / wall time
  PercentileSummary latency_ms;  // of ok responses only
};

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

}  // namespace sdg::serve

#endif  // SDG_SERVE_LOADGEN_H_
