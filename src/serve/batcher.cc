#include "src/serve/batcher.h"

#include <algorithm>

#include "src/common/metrics.h"

namespace sdg::serve {

AdaptiveBatcher::AdaptiveBatcher(BatcherOptions options)
    : options_(options),
      batch_(std::clamp(options.initial_batch, options.min_batch,
                        options.max_batch)) {
  window_.reserve(options_.window);
}

void AdaptiveBatcher::RecordLatencyMs(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  window_.push_back(ms);
  if (window_.size() < options_.window) {
    return;
  }
  std::sort(window_.begin(), window_.end());
  double p99 = PercentileOfSorted(window_, 99);
  window_.clear();
  last_p99_ms_ = p99;
  size_t batch = batch_.load(std::memory_order_relaxed);
  if (p99 > options_.slo_p99_ms) {
    size_t next = std::max(options_.min_batch, batch / 2);
    if (next != batch) {
      batch_.store(next, std::memory_order_relaxed);
      shrinks_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (p99 < options_.headroom * options_.slo_p99_ms) {
    size_t step = std::max<size_t>(1, batch / 8);
    size_t next = std::min(options_.max_batch, batch + step);
    if (next != batch) {
      batch_.store(next, std::memory_order_relaxed);
      grows_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

double AdaptiveBatcher::last_window_p99_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_p99_ms_;
}

}  // namespace sdg::serve
