// KvClient: the serve protocol's client library.
//
// One TCP connection to the gateway; requests are kRequest frames carrying a
// client-chosen request id, responses come back as kResponse frames in
// completion order (NOT request order — the gateway acks writes at injection
// and strong gets when the dataflow answers). The async Send/Recv pair is
// what the load generator pipelines; the sync Put/Get/Del helpers are
// convenience wrappers that send one request and wait for its id.
//
// Overload is a normal outcome: kRespOverloaded means the gateway shed the
// request before it touched any state, so retrying is always safe. Puts and
// dels are idempotent (last-writer-wins upsert / erase), so retrying a
// write whose response was lost is safe too.
#ifndef SDG_SERVE_CLIENT_H_
#define SDG_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/net/connection.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace sdg::serve {

struct KvClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Bounds how long any Recv (and so any sync call) blocks.
  int recv_timeout_ms = 10000;
};

class KvClient {
 public:
  explicit KvClient(KvClientOptions options) : options_(std::move(options)) {}

  // Dials the gateway and pings it (the ping is also the first frame, which
  // classifies this connection as a client peer).
  Status Connect();
  void Close() { socket_.Close(); }
  // Wakes a thread blocked in Recv with an error (pipelined shutdown).
  void Shutdown() { socket_.ShutdownBoth(); }
  bool connected() const { return socket_.valid(); }

  // --- Pipelined async API --------------------------------------------------

  // Sends one request as-is (the caller owns request_id assignment).
  Status Send(const net::RequestMsg& req);
  // Next response off the wire, any request id.
  Result<net::ResponseMsg> Recv();

  uint64_t NextRequestId() { return next_id_++; }

  // --- Sync conveniences ----------------------------------------------------
  // Send one request, wait for its response (discarding stale ids).

  Result<net::ResponseMsg> Put(int64_t key, std::string value);
  Result<net::ResponseMsg> Del(int64_t key);
  // `max_epoch_lag` only applies with stale=true: how many checkpoint epochs
  // the replica may trail the owner.
  Result<net::ResponseMsg> Get(int64_t key, bool stale = false,
                               uint32_t max_epoch_lag = 1);

 private:
  Result<net::ResponseMsg> Roundtrip(net::RequestMsg req);

  KvClientOptions options_;
  net::Socket socket_;
  net::FrameDecoder carry_;
  uint64_t next_id_ = 1;
};

}  // namespace sdg::serve

#endif  // SDG_SERVE_CLIENT_H_
