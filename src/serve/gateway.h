// ServeGateway: the client-facing front door of a serving KV fleet.
//
// Layers a request/response protocol onto the ElasticHead's existing
// membership port: clients connect with kRequest frames (the ChannelServer
// classifies them by first frame), workers' replica feeds arrive as
// kReplicaSubscribe/kReplicaEpoch, and strong-read replies ride the workers'
// control channels back as kResponse frames. The hot path is self-tuning:
//
//   * AdaptiveBatcher walks the inject batch size to hold the configured
//     p99 SLO (AIMD over completed-request latencies);
//   * AdmissionController sheds with kOverloaded once the pending queue +
//     the owners' mailbox depth + the head's unacked backlog crosses the
//     high-water mark (hysteresis down to the low-water mark);
//   * gets flagged kReadStale are answered from the ReplicaTable without
//     touching the dataflow when the replica is within the client's epoch
//     lag bound, and fall back to the strong path otherwise.
//
// Writes are acked once the head has accepted (logged) the delivery — the
// upstream-backup contract makes them replayable from that point. Strong
// gets flow through the dataflow keyed by DataItem::user_tag and complete
// when the owning worker's sink output returns.
#ifndef SDG_SERVE_GATEWAY_H_
#define SDG_SERVE_GATEWAY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/net/frame.h"
#include "src/runtime/elastic.h"
#include "src/serve/admission.h"
#include "src/serve/batcher.h"
#include "src/serve/replica_table.h"

namespace sdg::serve {

// Entry indexes of the serving KV fleet ({"put", "get", "del"} — must match
// tools/elastic_worker.cc --serve).
inline constexpr uint32_t kEntryPut = 0;
inline constexpr uint32_t kEntryGet = 1;
inline constexpr uint32_t kEntryDel = 2;

struct GatewayOptions {
  uint32_t partitions = 4;
  AdmissionOptions admission;
  BatcherOptions batcher;
  // > 0 pins the batch size (bench baseline); 0 = adaptive.
  size_t fixed_batch = 0;
  // How long a flush waits for the queue to fill a batch before sending a
  // short one.
  int linger_us = 200;
  // Strong gets outstanding longer than this complete as kRespError
  // ("timeout") — e.g. the owning worker died mid-request.
  int request_timeout_ms = 5000;
  // Injection deadline per batch; shorter than the elastic default so an
  // unreachable partition surfaces as request errors, not a wedged gateway.
  int inject_deadline_ms = 10000;
};

class ServeGateway {
 public:
  ServeGateway(elastic::ElasticHead* head, GatewayOptions options);
  ~ServeGateway();

  ServeGateway(const ServeGateway&) = delete;
  ServeGateway& operator=(const ServeGateway&) = delete;

  // Installs the serve handlers on the head's server and starts the flusher.
  // The head must already be started.
  Status Start();
  void Stop();

  struct Stats {
    uint64_t accepted = 0;
    uint64_t shed = 0;
    uint64_t puts = 0;
    uint64_t dels = 0;
    uint64_t strong_gets = 0;
    uint64_t replica_hits = 0;     // stale gets answered from a replica
    uint64_t replica_misses = 0;   // stale gets that fell back to strong
    uint64_t timeouts = 0;
    uint64_t errors = 0;
    uint64_t batches = 0;
    size_t batch_size = 0;         // current controller output
    double last_window_p99_ms = 0;
    bool shedding = false;
    uint64_t replica_epochs_applied = 0;
  };
  Stats stats() const;

  const ReplicaTable& replicas() const { return replicas_; }
  AdaptiveBatcher& batcher() { return batcher_; }
  AdmissionController& admission() { return admission_; }

 private:
  struct Pending {
    uint64_t client_id = 0;
    net::RequestMsg req;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct PendingGet {
    uint64_t client_id = 0;
    uint64_t client_request_id = 0;
    std::chrono::steady_clock::time_point enqueued;
  };

  void OnRequest(uint64_t client_id, net::RequestMsg req);
  void OnResponse(uint32_t member_id, net::ResponseMsg msg);
  void FlushLoop();
  void FlushBatch(std::vector<Pending> batch);
  void SweepTimeouts();
  void Respond(uint64_t client_id, uint64_t request_id, uint8_t code,
               uint8_t flags, std::string value, uint64_t epoch);
  double MsSince(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t)
        .count();
  }

  elastic::ElasticHead* head_;
  const GatewayOptions options_;
  AdmissionController admission_;
  AdaptiveBatcher batcher_;
  ReplicaTable replicas_;

  std::atomic<bool> running_{false};
  std::thread flusher_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  // Load signal beyond the local queue (owner mailbox depth + head unacked
  // backlog + outstanding strong gets), refreshed by the flusher.
  std::atomic<uint64_t> extra_signal_{0};

  std::mutex gets_mutex_;
  std::unordered_map<uint64_t, PendingGet> pending_gets_;
  std::atomic<uint64_t> next_tag_{1};

  std::atomic<uint64_t> puts_{0};
  std::atomic<uint64_t> dels_{0};
  std::atomic<uint64_t> strong_gets_{0};
  std::atomic<uint64_t> replica_hits_{0};
  std::atomic<uint64_t> replica_misses_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> batches_{0};
};

}  // namespace sdg::serve

#endif  // SDG_SERVE_GATEWAY_H_
