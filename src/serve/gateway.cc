#include "src/serve/gateway.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/value.h"

namespace sdg::serve {

ServeGateway::ServeGateway(elastic::ElasticHead* head, GatewayOptions options)
    : head_(head),
      options_(options),
      admission_(options.admission),
      batcher_(options.batcher),
      replicas_(options.partitions) {}

ServeGateway::~ServeGateway() { Stop(); }

Status ServeGateway::Start() {
  if (head_ == nullptr || head_->server() == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "head not started");
  }
  running_.store(true, std::memory_order_release);
  head_->server()->SetServeHandlers(
      [this](uint64_t client_id, net::RequestMsg req) {
        OnRequest(client_id, std::move(req));
      },
      [this](const net::ReplicaSubscribeMsg& sub, net::ReplicaEpochMsg msg) {
        (void)sub;
        replicas_.OnEpoch(msg);
      });
  head_->SetResponseHandler([this](uint32_t member_id, net::ResponseMsg msg) {
    OnResponse(member_id, std::move(msg));
  });
  flusher_ = std::thread([this] { FlushLoop(); });
  return Status::Ok();
}

void ServeGateway::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  if (head_ != nullptr) {
    if (head_->server() != nullptr) {
      head_->server()->SetServeHandlers(nullptr, nullptr);
    }
    head_->SetResponseHandler(nullptr);
  }
  queue_cv_.notify_all();
  if (flusher_.joinable()) {
    flusher_.join();
  }
}

void ServeGateway::Respond(uint64_t client_id, uint64_t request_id,
                           uint8_t code, uint8_t flags, std::string value,
                           uint64_t epoch) {
  net::ResponseMsg resp;
  resp.request_id = request_id;
  resp.code = code;
  resp.flags = flags;
  resp.value = std::move(value);
  resp.epoch = epoch;
  // TrySend under the hood: a client too slow to read its socket sheds its
  // own responses rather than blocking the gateway.
  (void)head_->server()->SendToClient(client_id, resp.Encode());
}

void ServeGateway::OnRequest(uint64_t client_id, net::RequestMsg req) {
  // Dispatch-executor thread: decide, answer, or enqueue — never block.
  if (req.op == net::kOpPing) {
    Respond(client_id, req.request_id, net::kRespOk, 0, "", 0);
    return;
  }
  size_t local;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    local = queue_.size();
  }
  admission_.Observe(local + extra_signal_.load(std::memory_order_relaxed));
  if (!admission_.Admit()) {
    Respond(client_id, req.request_id, net::kRespOverloaded, 0, "", 0);
    return;
  }
  if (req.op == net::kOpGet && (req.flags & net::kReadStale) != 0) {
    StaleReadResult r = replicas_.TryGet(req.key, req.max_epoch_lag);
    if (r.admissible) {
      replica_hits_.fetch_add(1, std::memory_order_relaxed);
      Respond(client_id, req.request_id, net::kRespOk, net::kRespFromReplica,
              r.found ? std::move(r.value) : std::string(), r.epoch);
      return;
    }
    replica_misses_.fetch_add(1, std::memory_order_relaxed);
    // Fall through to the strong path.
  }
  Pending p;
  p.client_id = client_id;
  p.req = std::move(req);
  p.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(p));
  }
  queue_cv_.notify_one();
}

void ServeGateway::FlushLoop() {
  auto last_sweep = std::chrono::steady_clock::now();
  while (running_.load(std::memory_order_acquire)) {
    std::vector<Pending> batch;
    size_t target = options_.fixed_batch > 0 ? options_.fixed_batch
                                             : batcher_.batch_size();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(10), [this] {
        return !queue_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (!running_.load(std::memory_order_acquire)) {
        break;
      }
      if (!queue_.empty() && queue_.size() < target &&
          options_.linger_us > 0) {
        // Short linger to let a batch fill under load; under light load the
        // timeout expires and a small batch goes out.
        queue_cv_.wait_for(lock, std::chrono::microseconds(options_.linger_us),
                           [this, target] { return queue_.size() >= target; });
      }
      size_t take = std::min(queue_.size(), target);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!batch.empty()) {
      FlushBatch(std::move(batch));
    }
    auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= std::chrono::milliseconds(50)) {
      last_sweep = now;
      SweepTimeouts();
      size_t gets;
      {
        std::lock_guard<std::mutex> lock(gets_mutex_);
        gets = pending_gets_.size();
      }
      extra_signal_.store(
          gets + replicas_.owner_queue_depth() + head_->UnackedTotal(),
          std::memory_order_relaxed);
    }
  }
}

void ServeGateway::FlushBatch(std::vector<Pending> batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<elastic::ElasticHead::TaggedTuple> puts;
  std::vector<elastic::ElasticHead::TaggedTuple> gets;
  std::vector<elastic::ElasticHead::TaggedTuple> dels;
  // Writes acked on injection-accept; index into `batch` for latency+reply.
  std::vector<size_t> put_idx;
  std::vector<size_t> del_idx;
  for (size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    switch (p.req.op) {
      case net::kOpPut:
        puts.push_back({Tuple{Value(p.req.key), Value(p.req.value)}, 0});
        put_idx.push_back(i);
        break;
      case net::kOpDel:
        dels.push_back({Tuple{Value(p.req.key)}, 0});
        del_idx.push_back(i);
        break;
      case net::kOpGet: {
        uint64_t tag = next_tag_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(gets_mutex_);
          pending_gets_[tag] =
              PendingGet{p.client_id, p.req.request_id, p.enqueued};
        }
        gets.push_back({Tuple{Value(p.req.key)}, tag});
        break;
      }
      default:
        errors_.fetch_add(1, std::memory_order_relaxed);
        Respond(p.client_id, p.req.request_id, net::kRespError, 0,
                "bad op", 0);
        break;
    }
  }
  auto ack_writes = [&](const std::vector<size_t>& idx, const Status& st,
                        std::atomic<uint64_t>& counter) {
    for (size_t i : idx) {
      Pending& p = batch[i];
      if (st.ok()) {
        counter.fetch_add(1, std::memory_order_relaxed);
        batcher_.RecordLatencyMs(MsSince(p.enqueued));
        Respond(p.client_id, p.req.request_id, net::kRespOk, 0, "", 0);
      } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
        Respond(p.client_id, p.req.request_id, net::kRespError, 0,
                st.ToString(), 0);
      }
    }
  };
  if (!puts.empty()) {
    Status st = head_->InjectBatch(kEntryPut, std::move(puts),
                                   options_.inject_deadline_ms);
    ack_writes(put_idx, st, puts_);
  }
  if (!dels.empty()) {
    Status st = head_->InjectBatch(kEntryDel, std::move(dels),
                                   options_.inject_deadline_ms);
    ack_writes(del_idx, st, dels_);
  }
  if (!gets.empty()) {
    std::vector<uint64_t> tags;
    tags.reserve(gets.size());
    for (const auto& g : gets) {
      tags.push_back(g.tag);
    }
    Status st = head_->InjectBatch(kEntryGet, std::move(gets),
                                   options_.inject_deadline_ms);
    if (!st.ok()) {
      // The gets never reached an owner: fail them now instead of waiting
      // for the sweep.
      std::lock_guard<std::mutex> lock(gets_mutex_);
      for (uint64_t tag : tags) {
        auto it = pending_gets_.find(tag);
        if (it == pending_gets_.end()) {
          continue;
        }
        errors_.fetch_add(1, std::memory_order_relaxed);
        Respond(it->second.client_id, it->second.client_request_id,
                net::kRespError, 0, st.ToString(), 0);
        pending_gets_.erase(it);
      }
    }
  }
}

void ServeGateway::OnResponse(uint32_t member_id, net::ResponseMsg msg) {
  // Member IO thread: map the internal tag back to the waiting client.
  (void)member_id;
  PendingGet get;
  {
    std::lock_guard<std::mutex> lock(gets_mutex_);
    auto it = pending_gets_.find(msg.request_id);
    if (it == pending_gets_.end()) {
      return;  // timed out / duplicate after worker replay
    }
    get = it->second;
    pending_gets_.erase(it);
  }
  strong_gets_.fetch_add(1, std::memory_order_relaxed);
  batcher_.RecordLatencyMs(MsSince(get.enqueued));
  Respond(get.client_id, get.client_request_id, msg.code, 0,
          std::move(msg.value), msg.epoch);
}

void ServeGateway::SweepTimeouts() {
  std::vector<PendingGet> expired;
  {
    std::lock_guard<std::mutex> lock(gets_mutex_);
    for (auto it = pending_gets_.begin(); it != pending_gets_.end();) {
      if (MsSince(it->second.enqueued) >= options_.request_timeout_ms) {
        expired.push_back(it->second);
        it = pending_gets_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& get : expired) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    Respond(get.client_id, get.client_request_id, net::kRespError, 0,
            "timeout", 0);
  }
}

ServeGateway::Stats ServeGateway::stats() const {
  Stats s;
  s.accepted = admission_.accepted();
  s.shed = admission_.shed();
  s.puts = puts_.load(std::memory_order_relaxed);
  s.dels = dels_.load(std::memory_order_relaxed);
  s.strong_gets = strong_gets_.load(std::memory_order_relaxed);
  s.replica_hits = replica_hits_.load(std::memory_order_relaxed);
  s.replica_misses = replica_misses_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_size = options_.fixed_batch > 0 ? options_.fixed_batch
                                          : batcher_.batch_size();
  s.last_window_p99_ms = batcher_.last_window_p99_ms();
  s.shedding = admission_.shedding();
  s.replica_epochs_applied = replicas_.epochs_applied();
  return s;
}

}  // namespace sdg::serve
