// Gateway-side table of per-partition read replicas.
//
// The workers' replica feeds (kReplicaEpoch frames) land here: announces
// advance each partition's owner watermark, base/delta blobs fold into the
// partition's ReplicaView. A bounded-stale get reads the view directly —
// never touching the dataflow — iff the view is within the caller's epoch
// lag of the owner's announce watermark (§3.2 partial state for read
// scaling). Announces also piggyback the owner's mailbox depth, which the
// admission controller uses as its backpressure signal.
#ifndef SDG_SERVE_REPLICA_TABLE_H_
#define SDG_SERVE_REPLICA_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/state/keyed_dict.h"
#include "src/state/replica_view.h"

namespace sdg::serve {

// Outcome of a bounded-stale read attempt.
struct StaleReadResult {
  bool admissible = false;  // replica fresh enough to answer at all
  bool found = false;       // key present (meaningful iff admissible)
  std::string value;
  uint64_t epoch = 0;       // epoch the answer reflects
};

class ReplicaTable {
 public:
  explicit ReplicaTable(uint32_t partitions);

  // Feed event from a worker (any thread).
  void OnEpoch(const net::ReplicaEpochMsg& msg);

  // Bounded-stale read of `key` from its partition's replica. Admissible only
  // when the replica holds a base from the current owner and lags the owner's
  // announce watermark by at most `max_epoch_lag` epochs.
  StaleReadResult TryGet(int64_t key, uint64_t max_epoch_lag) const;

  uint32_t partitions() const {
    return static_cast<uint32_t>(views_.size());
  }
  uint32_t PartitionOf(int64_t key) const;

  // Latest owner mailbox depth piggybacked on any announce (admission
  // signal), and feed counters.
  uint64_t owner_queue_depth() const {
    return owner_depth_.load(std::memory_order_relaxed);
  }
  uint64_t epochs_applied() const {
    return applied_.load(std::memory_order_relaxed);
  }
  uint64_t feed_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  const state::ReplicaView& view(uint32_t partition) const {
    return *views_[partition];
  }

 private:
  std::vector<std::unique_ptr<state::ReplicaView>> views_;
  std::atomic<uint64_t> owner_depth_{0};
  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace sdg::serve

#endif  // SDG_SERVE_REPLICA_TABLE_H_
