// Cold-tier spill: the disk side of larger-than-memory state.
//
// A backend under a memory budget evicts whole stripes to per-stripe spill
// files under a backend-private directory. A spill file is one chunk frame v2
// blob (same codec as checkpoints), so a spilled stripe's serialized form is
// already checkpoint-shaped: full bases re-emit it record-by-record without
// rehydration, and migration/replica feeds stream it straight from disk.
//
// Spill files are an ephemeral cache of in-memory state, NOT a durability
// tier — durability stays with checkpoints. They are therefore written
// without fsync (tmp + rename keeps a reader from ever seeing a torn file in
// this process's lifetime) and the spill directory is wiped whenever spill is
// (re-)enabled, so a crashed process can never fault in a stale cold tier:
// after a crash the state is rebuilt from the checkpoint chain, exactly as if
// it had never spilled.
#ifndef SDG_STATE_SPILL_H_
#define SDG_STATE_SPILL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/state/codec.h"

namespace sdg::state {

// Per-backend cold-tier policy. Passed to StateBackend::ConfigureSpill.
struct SpillConfig {
  std::string dir;           // backend-private spill directory (required)
  uint64_t budget_bytes = 0;  // resident-byte budget; 0 disables spill
  // Stripes that must stay resident (victim selection never drains the
  // backend completely; fault-in always has somewhere to land).
  uint32_t min_resident_stripes = 1;
  // Chunk codec for spill files (kChunkCodec*).
  uint8_t codec = kChunkCodecPrefix;
};

// Counters for tests, metrics and the checkpoint driver's epoch log line.
struct SpillStats {
  uint64_t evictions = 0;        // stripe evictions (incl. compactions)
  uint64_t fault_ins = 0;        // stripes paged back on access
  uint64_t cold_lookups = 0;     // single-key reads answered from a blob
  uint64_t spilled_stripes = 0;  // currently on disk
  uint64_t spilled_bytes = 0;    // current total spill file bytes
  uint64_t resident_bytes = 0;   // current accounted resident bytes
};

// Creates `dir` (and parents) and removes any stale "*.spill" files in it.
// Called from ConfigureSpill: a fresh process must never read a previous
// incarnation's cold tier.
Status PrepareSpillDir(const std::string& dir);

// Writes `blob` to `path` via "<path>.tmp" + rename, so `path` is only ever
// absent or complete. No fsync: spill files do not outlive the process.
Status WriteSpillFileAtomic(const std::string& path,
                            const std::vector<uint8_t>& blob);

// Reads a whole spill file. A missing file is an empty blob (an evicted
// stripe with zero records writes no file).
Result<std::vector<uint8_t>> ReadSpillFile(const std::string& path);

// Removes `path` if present (fault-in, Clear, re-eviction).
void RemoveSpillFile(const std::string& path);

// --- Deterministic crash points (chaos harness) -----------------------------
// ArmSpillCrashPoint("spill.evict") makes the next SpillCrashPoint call with
// that phase _Exit(41) the process, mirroring the migration crash-point
// mechanism in src/runtime/elastic.cc. Phases used by KeyedDict:
//   spill.evict    — spill file renamed into place, victim not yet dropped
//   spill.faultin  — blob read and merged, spill file not yet removed
//   spill.ckpt     — mid-serialize of a spilled stripe during a checkpoint
void ArmSpillCrashPoint(std::string_view phase);
void SpillCrashPoint(std::string_view phase);

}  // namespace sdg::state

#endif  // SDG_STATE_SPILL_H_
