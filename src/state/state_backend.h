// StateBackend: the contract every state-element data structure implements.
//
// The paper (§3.2, §5) requires SE data structures to support
//  (a) dynamic partitioning — so a partitioned SE can be split across nodes
//      and re-split when the runtime adds instances, and
//  (b) dirty state — so an asynchronous checkpoint can serialise a frozen
//      consistent snapshot while processing continues against an overlay,
//      with only a brief lock to consolidate the overlay afterwards.
//
// Checkpoint data is emitted as (key_hash, payload) records. Because the
// partitioning hash travels with each record, checkpoint chunks can be
// hash-split *without deserialising them* — which is exactly what the m-to-n
// restore protocol needs when a backup node splits its chunk across n
// recovering nodes (§5, step R1).
#ifndef SDG_STATE_STATE_BACKEND_H_
#define SDG_STATE_STATE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/state/spill.h"

namespace sdg::state {

// Receives one serialised state record. `payload` is only valid for the
// duration of the call.
using RecordSink =
    std::function<void(uint64_t key_hash, const uint8_t* payload, size_t size)>;

// Delta-epoch variant: `tombstone` marks a record erased since the previous
// epoch; its payload encodes only enough to name the erased entry (the key).
using DeltaRecordSink = std::function<void(
    uint64_t key_hash, const uint8_t* payload, size_t size, bool tombstone)>;

class StateBackend {
 public:
  virtual ~StateBackend() = default;

  virtual std::string_view TypeName() const = 0;

  // Approximate in-memory footprint, used by benches to size state and by the
  // runtime to decide how many checkpoint chunks to cut.
  virtual size_t SizeBytes() const = 0;
  virtual uint64_t EntryCount() const = 0;

  // --- Asynchronous checkpoint protocol (§5) -------------------------------
  // Step 1: flag the SE dirty. After this call, writes divert to the dirty
  // overlay and reads consult the overlay first.
  virtual void BeginCheckpoint() = 0;
  // Step 3: emit the frozen consistent state. Runs concurrently with
  // processing; must only be called while a checkpoint is active (in which
  // case the main structure is immutable) or from a quiesced backend.
  virtual void SerializeRecords(const RecordSink& sink) const = 0;
  // Step 5: lock briefly, fold the dirty overlay into the main structure and
  // clear the dirty flag. Returns the number of overlay entries consolidated.
  virtual uint64_t EndCheckpoint() = 0;

  virtual bool checkpoint_active() const = 0;

  // --- Delta epochs ----------------------------------------------------------
  // Between periodic full bases, an epoch may persist only the records
  // changed or erased since the previous committed epoch. The protocol:
  //   EnableDeltaTracking() once; then per epoch, after BeginCheckpoint():
  //   if DeltaReady(), SerializeDirtyRecords() emits the changed records and
  //   tombstones of the frozen snapshot; otherwise SerializeRecords() emits a
  //   full base. Once the epoch's durability is decided (meta written or
  //   abandoned), ResolveEpoch(committed) either commits the new baseline or
  //   merges the frozen change set back so the next delta is a superset.
  // Defaults make every backend a valid (always-full) participant.
  virtual void EnableDeltaTracking() {}
  // True when this backend has a committed baseline and a tracked change set,
  // i.e. SerializeDirtyRecords() would reconstruct the state when applied
  // over the previous committed epoch.
  virtual bool DeltaReady() const { return false; }
  // Emits the records changed and the erases performed since the previous
  // committed epoch. Same concurrency contract as SerializeRecords. Must only
  // be called when DeltaReady().
  virtual void SerializeDirtyRecords(const DeltaRecordSink& sink) const {
    SerializeRecords(
        [&sink](uint64_t key_hash, const uint8_t* payload, size_t size) {
          sink(key_hash, payload, size, /*tombstone=*/false);
        });
  }
  // Commits (true) or abandons (false) the epoch whose serialisation started
  // at the last BeginCheckpoint. Call after EndCheckpoint.
  virtual void ResolveEpoch(bool committed) { (void)committed; }

  // --- Sharded serialisation -------------------------------------------------
  // Backends striped with ShardedState expose their stripes so the checkpoint
  // driver can fan SerializeRecords out across a thread pool: shard s emits
  // exactly the records whose routing hash maps to stripe s, and the shards
  // partition the state, so any interleaving of the per-shard emissions
  // reconstructs the same state (chunk routing stays hash-based and record
  // order within a chunk is not meaningful). Same concurrency contract as
  // SerializeRecords. Defaults make unsharded backends valid single-shard
  // participants.
  virtual uint32_t SerializeShardCount() const { return 1; }
  virtual void SerializeShardRecords(uint32_t shard,
                                     const RecordSink& sink) const {
    if (shard == 0) {
      SerializeRecords(sink);
    }
  }
  virtual void SerializeShardDirtyRecords(uint32_t shard,
                                          const DeltaRecordSink& sink) const {
    if (shard == 0) {
      SerializeDirtyRecords(sink);
    }
  }

  // --- Restore --------------------------------------------------------------
  virtual void Clear() = 0;
  // Merges one record previously produced by SerializeRecords.
  virtual Status RestoreRecord(const uint8_t* payload, size_t size) = 0;
  // Applies a tombstone from a delta chunk: erases the entry the payload
  // names. Erasing an absent entry is a no-op (the base may predate it).
  virtual Status RestoreErase(const uint8_t* payload, size_t size) {
    (void)payload;
    (void)size;
    return Status(StatusCode::kUnimplemented,
                  std::string(TypeName()) + " cannot apply tombstones");
  }

  // --- Dynamic partitioning (§3.2) -------------------------------------------
  // Emits and removes every record whose key hash maps to `part` under
  // hash % num_parts. Invalid while a checkpoint is active.
  virtual Status ExtractPartition(uint32_t part, uint32_t num_parts,
                                  const RecordSink& sink) = 0;

  // Runs `fn` while every writer is excluded — striped backends take all
  // stripe locks (in index order) for the duration. The live-migration
  // cutover runs its final delta capture under this fence so the shipped
  // state and the handed-off watermark agree; its hold time is the measured
  // migration pause. Unsynchronised backends run `fn` directly (their caller
  // already owns exclusivity).
  virtual void ExclusiveBarrier(const std::function<void()>& fn) { fn(); }

  // --- Cold-tier spill -------------------------------------------------------
  // Puts the backend under a resident-byte budget: when accounted resident
  // bytes exceed it, whole stripes are evicted to chunk-framed files under
  // config.dir and paged back transparently on access (see docs/state.md,
  // "Tiered storage"). Checkpoints, delta epochs, restore, migration and the
  // replica feed all keep working while stripes are spilled — a spilled
  // stripe serializes straight from its blob without rehydration. Backends
  // whose stripes share contiguous storage (VectorState, DenseMatrix) cannot
  // free memory per stripe and return kUnimplemented.
  virtual Status ConfigureSpill(const SpillConfig& config) {
    (void)config;
    return UnimplementedError(std::string(TypeName()) +
                              " does not support cold-tier spill");
  }
  virtual SpillStats GetSpillStats() const { return {}; }
};

// Creates an empty instance of a concrete backend; the runtime uses this when
// materialising SE instances on nodes and when re-creating them on recovery.
using StateFactory = std::function<std::unique_ptr<StateBackend>()>;

// Typed downcast for task-element code that knows its SE's concrete type.
template <typename T>
T* StateAs(StateBackend* backend) {
  return dynamic_cast<T*>(backend);
}

}  // namespace sdg::state

#endif  // SDG_STATE_STATE_BACKEND_H_
