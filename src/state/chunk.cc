#include "src/state/chunk.h"

#include <cstring>

#include "src/common/serialize.h"

namespace sdg::state {
namespace {

// Serialised header prefix; the body (records) follows immediately.
std::vector<uint8_t> BuildHeader(const std::string& se_name,
                                 uint64_t record_count) {
  BinaryWriter w;
  w.Write<uint32_t>(kChunkMagic);
  w.Write<uint32_t>(kChunkVersion);
  w.WriteString(se_name);
  w.Write<uint64_t>(record_count);
  return std::move(w).TakeBuffer();
}

}  // namespace

ChunkBuilder::ChunkBuilder(std::string se_name) : se_name_(std::move(se_name)) {}

void ChunkBuilder::AddRecord(uint64_t key_hash, const uint8_t* payload,
                             size_t size) {
  // Hot path (every state record of every checkpoint): frame the record
  // in-place, no temporary buffers.
  uint64_t len = size;
  size_t offset = body_.size();
  body_.resize(offset + 2 * sizeof(uint64_t) + size);
  std::memcpy(body_.data() + offset, &key_hash, sizeof(uint64_t));
  std::memcpy(body_.data() + offset + sizeof(uint64_t), &len, sizeof(uint64_t));
  std::memcpy(body_.data() + offset + 2 * sizeof(uint64_t), payload, size);
  ++record_count_;
}

RecordSink ChunkBuilder::AsSink() {
  return [this](uint64_t key_hash, const uint8_t* payload, size_t size) {
    AddRecord(key_hash, payload, size);
  };
}

size_t ChunkBuilder::size_bytes() const { return body_.size(); }

std::vector<uint8_t> ChunkBuilder::Finish() && {
  std::vector<uint8_t> out = BuildHeader(se_name_, record_count_);
  out.insert(out.end(), body_.begin(), body_.end());
  return out;
}

Result<ChunkReader> ChunkReader::Open(const std::vector<uint8_t>& chunk) {
  BinaryReader r(chunk);
  SDG_ASSIGN_OR_RETURN(uint32_t magic, r.Read<uint32_t>());
  if (magic != kChunkMagic) {
    return Status(StatusCode::kDataLoss, "bad chunk magic");
  }
  SDG_ASSIGN_OR_RETURN(uint32_t version, r.Read<uint32_t>());
  if (version != kChunkVersion) {
    return Status(StatusCode::kDataLoss, "unsupported chunk version");
  }
  SDG_ASSIGN_OR_RETURN(std::string se_name, r.ReadString());
  SDG_ASSIGN_OR_RETURN(uint64_t record_count, r.Read<uint64_t>());
  return ChunkReader(std::move(se_name), record_count,
                     chunk.data() + r.position(), chunk.size() - r.position());
}

Status ChunkReader::ForEachRecord(const RecordSink& fn) const {
  BinaryReader r(body_, body_size_);
  for (uint64_t i = 0; i < record_count_; ++i) {
    SDG_ASSIGN_OR_RETURN(uint64_t key_hash, r.Read<uint64_t>());
    SDG_ASSIGN_OR_RETURN(uint64_t len, r.Read<uint64_t>());
    if (r.remaining() < len) {
      return Status(StatusCode::kDataLoss, "truncated chunk record");
    }
    fn(key_hash, body_ + r.position(), len);
    SDG_RETURN_IF_ERROR(r.Skip(len));
  }
  return Status::Ok();
}

Result<std::vector<std::vector<uint8_t>>> SplitChunk(
    const std::vector<uint8_t>& chunk, uint32_t n) {
  SDG_ASSIGN_OR_RETURN(ChunkReader reader, ChunkReader::Open(chunk));
  std::vector<ChunkBuilder> builders;
  builders.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    builders.emplace_back(reader.se_name());
  }
  SDG_RETURN_IF_ERROR(reader.ForEachRecord(
      [&](uint64_t key_hash, const uint8_t* payload, size_t size) {
        builders[key_hash % n].AddRecord(key_hash, payload, size);
      }));
  std::vector<std::vector<uint8_t>> out;
  out.reserve(n);
  for (auto& b : builders) {
    out.push_back(std::move(b).Finish());
  }
  return out;
}

Result<std::vector<uint8_t>> FilterChunk(const std::vector<uint8_t>& chunk,
                                         uint32_t part, uint32_t num_parts) {
  SDG_ASSIGN_OR_RETURN(ChunkReader reader, ChunkReader::Open(chunk));
  ChunkBuilder builder(reader.se_name());
  SDG_RETURN_IF_ERROR(reader.ForEachRecord(
      [&](uint64_t key_hash, const uint8_t* payload, size_t size) {
        if (key_hash % num_parts == part) {
          builder.AddRecord(key_hash, payload, size);
        }
      }));
  return std::move(builder).Finish();
}

Status RestoreChunk(StateBackend& backend, const std::vector<uint8_t>& chunk) {
  SDG_ASSIGN_OR_RETURN(ChunkReader reader, ChunkReader::Open(chunk));
  Status status;
  SDG_RETURN_IF_ERROR(reader.ForEachRecord(
      [&](uint64_t key_hash, const uint8_t* payload, size_t size) {
        if (status.ok()) {
          status = backend.RestoreRecord(payload, size);
        }
      }));
  return status;
}

std::vector<std::vector<uint8_t>> SerializeToChunks(const StateBackend& backend,
                                                    std::string_view se_name,
                                                    uint32_t m) {
  std::vector<ChunkBuilder> builders;
  builders.reserve(m);
  for (uint32_t i = 0; i < m; ++i) {
    builders.emplace_back(std::string(se_name));
  }
  backend.SerializeRecords(
      [&](uint64_t key_hash, const uint8_t* payload, size_t size) {
        builders[key_hash % m].AddRecord(key_hash, payload, size);
      });
  std::vector<std::vector<uint8_t>> out;
  out.reserve(m);
  for (auto& b : builders) {
    out.push_back(std::move(b).Finish());
  }
  return out;
}

}  // namespace sdg::state
