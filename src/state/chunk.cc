#include "src/state/chunk.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/common/serialize.h"
#include "src/state/codec.h"

namespace sdg::state {

std::vector<uint8_t> BuildChunkHeader(const ChunkOptions& options,
                                      std::string_view se_name,
                                      uint64_t record_count) {
  BinaryWriter w;
  w.Write<uint32_t>(kChunkMagic);
  w.Write<uint32_t>(options.version);
  w.WriteString(se_name);
  w.Write<uint64_t>(record_count);
  if (options.version >= kChunkVersion2) {
    w.Write<uint8_t>(options.codec);
    w.Write<uint8_t>(options.delta ? kChunkFlagDelta : 0);
  }
  return std::move(w).TakeBuffer();
}

void AppendRecordFrame(const ChunkOptions& options, uint64_t key_hash,
                       const uint8_t* payload, size_t size, bool tombstone,
                       std::vector<uint8_t>& out,
                       std::vector<uint8_t>& prev_payload) {
  if (options.version < kChunkVersion2) {
    SDG_CHECK(!tombstone) << "tombstone records need the v2 chunk frame";
    uint64_t len = size;
    size_t offset = out.size();
    out.resize(offset + 2 * sizeof(uint64_t) + size);
    std::memcpy(out.data() + offset, &key_hash, sizeof(uint64_t));
    std::memcpy(out.data() + offset + sizeof(uint64_t), &len, sizeof(uint64_t));
    std::memcpy(out.data() + offset + 2 * sizeof(uint64_t), payload, size);
    return;
  }
  size_t offset = out.size();
  out.resize(offset + sizeof(uint64_t) + 1);
  std::memcpy(out.data() + offset, &key_hash, sizeof(uint64_t));
  out[offset + sizeof(uint64_t)] = tombstone ? kRecordFlagTombstone : 0;
  AppendVarint(out, size);
  if (options.codec == kChunkCodecPrefix) {
    size_t prefix = 0;
    size_t limit = std::min(size, prev_payload.size());
    while (prefix < limit && payload[prefix] == prev_payload[prefix]) {
      ++prefix;
    }
    AppendVarint(out, prefix);
    out.insert(out.end(), payload + prefix, payload + size);
    prev_payload.assign(payload, payload + size);
  } else {
    out.insert(out.end(), payload, payload + size);
  }
}

ChunkBuilder::ChunkBuilder(std::string se_name, ChunkOptions options)
    : se_name_(std::move(se_name)), options_(options) {
  SDG_CHECK(options_.version == kChunkVersion ||
            options_.version == kChunkVersion2)
      << "unknown chunk version";
  SDG_CHECK(options_.version >= kChunkVersion2 ||
            (options_.codec == kChunkCodecNone && !options_.delta))
      << "codec/delta need the v2 chunk frame";
}

void ChunkBuilder::AddRecord(uint64_t key_hash, const uint8_t* payload,
                             size_t size) {
  // Hot path (every state record of every checkpoint): frame the record
  // in-place, no temporary buffers.
  AppendRecordFrame(options_, key_hash, payload, size, /*tombstone=*/false,
                    body_, prev_payload_);
  ++record_count_;
}

void ChunkBuilder::AddTombstone(uint64_t key_hash, const uint8_t* payload,
                                size_t size) {
  AppendRecordFrame(options_, key_hash, payload, size, /*tombstone=*/true,
                    body_, prev_payload_);
  ++record_count_;
}

RecordSink ChunkBuilder::AsSink() {
  return [this](uint64_t key_hash, const uint8_t* payload, size_t size) {
    AddRecord(key_hash, payload, size);
  };
}

size_t ChunkBuilder::size_bytes() const { return body_.size(); }

std::vector<uint8_t> ChunkBuilder::Finish() && {
  std::vector<uint8_t> out = BuildChunkHeader(options_, se_name_, record_count_);
  out.insert(out.end(), body_.begin(), body_.end());
  return out;
}

Result<ChunkReader> ChunkReader::Open(const std::vector<uint8_t>& chunk) {
  BinaryReader r(chunk);
  SDG_ASSIGN_OR_RETURN(uint32_t magic, r.Read<uint32_t>());
  if (magic != kChunkMagic) {
    return Status(StatusCode::kDataLoss, "bad chunk magic");
  }
  SDG_ASSIGN_OR_RETURN(uint32_t version, r.Read<uint32_t>());
  if (version != kChunkVersion && version != kChunkVersion2) {
    return Status(StatusCode::kDataLoss, "unsupported chunk version");
  }
  SDG_ASSIGN_OR_RETURN(std::string se_name, r.ReadString());
  SDG_ASSIGN_OR_RETURN(uint64_t record_count, r.Read<uint64_t>());
  ChunkOptions options;
  options.version = version;
  if (version >= kChunkVersion2) {
    SDG_ASSIGN_OR_RETURN(options.codec, r.Read<uint8_t>());
    if (!ChunkCodecKnown(options.codec)) {
      return Status(StatusCode::kDataLoss, "unknown chunk codec");
    }
    SDG_ASSIGN_OR_RETURN(uint8_t flags, r.Read<uint8_t>());
    options.delta = (flags & kChunkFlagDelta) != 0;
  }
  return ChunkReader(std::move(se_name), record_count, options,
                     chunk.data() + r.position(), chunk.size() - r.position());
}

Status ChunkReader::ForEach(const ChunkRecordFn& fn) const {
  BinaryReader r(body_, body_size_);
  if (options_.version < kChunkVersion2) {
    for (uint64_t i = 0; i < record_count_; ++i) {
      SDG_ASSIGN_OR_RETURN(uint64_t key_hash, r.Read<uint64_t>());
      SDG_ASSIGN_OR_RETURN(uint64_t len, r.Read<uint64_t>());
      if (r.remaining() < len) {
        return Status(StatusCode::kDataLoss, "truncated chunk record");
      }
      fn({key_hash, body_ + r.position(), len, /*tombstone=*/false});
      SDG_RETURN_IF_ERROR(r.Skip(len));
    }
    return Status::Ok();
  }
  // v2: iterate by count, or to the end of the body for streamed chunks.
  std::vector<uint8_t> scratch;  // materialised payload (prefix codec)
  uint64_t seen = 0;
  while (record_count_ == kStreamedRecordCount ? !r.AtEnd()
                                               : seen < record_count_) {
    SDG_ASSIGN_OR_RETURN(uint64_t key_hash, r.Read<uint64_t>());
    SDG_ASSIGN_OR_RETURN(uint8_t flags, r.Read<uint8_t>());
    SDG_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(r));
    const bool tombstone = (flags & kRecordFlagTombstone) != 0;
    if (options_.codec == kChunkCodecPrefix) {
      SDG_ASSIGN_OR_RETURN(uint64_t prefix, ReadVarint(r));
      if (prefix > len || prefix > scratch.size()) {
        return Status(StatusCode::kDataLoss, "bad prefix-dedup length");
      }
      const uint64_t suffix = len - prefix;
      if (r.remaining() < suffix) {
        return Status(StatusCode::kDataLoss, "truncated chunk record");
      }
      scratch.resize(len);
      std::memcpy(scratch.data() + prefix, body_ + r.position(), suffix);
      SDG_RETURN_IF_ERROR(r.Skip(suffix));
      fn({key_hash, scratch.data(), len, tombstone});
    } else {
      if (r.remaining() < len) {
        return Status(StatusCode::kDataLoss, "truncated chunk record");
      }
      fn({key_hash, body_ + r.position(), len, tombstone});
      SDG_RETURN_IF_ERROR(r.Skip(len));
    }
    ++seen;
  }
  return Status::Ok();
}

Status ChunkReader::ForEachRecord(const RecordSink& fn) const {
  Status tombstone_error;
  SDG_RETURN_IF_ERROR(ForEach([&](const ChunkRecordView& rec) {
    if (rec.tombstone) {
      if (tombstone_error.ok()) {
        tombstone_error = Status(StatusCode::kFailedPrecondition,
                                 "delta chunk tombstone in a record-only walk");
      }
      return;
    }
    fn(rec.key_hash, rec.payload, rec.size);
  }));
  return tombstone_error;
}

Result<std::vector<std::vector<uint8_t>>> SplitChunk(
    const std::vector<uint8_t>& chunk, uint32_t n) {
  SDG_ASSIGN_OR_RETURN(ChunkReader reader, ChunkReader::Open(chunk));
  std::vector<ChunkBuilder> builders;
  builders.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    builders.emplace_back(reader.se_name(), reader.options());
  }
  SDG_RETURN_IF_ERROR(reader.ForEach([&](const ChunkRecordView& rec) {
    ChunkBuilder& b = builders[rec.key_hash % n];
    if (rec.tombstone) {
      b.AddTombstone(rec.key_hash, rec.payload, rec.size);
    } else {
      b.AddRecord(rec.key_hash, rec.payload, rec.size);
    }
  }));
  std::vector<std::vector<uint8_t>> out;
  out.reserve(n);
  for (auto& b : builders) {
    out.push_back(std::move(b).Finish());
  }
  return out;
}

Result<std::vector<uint8_t>> FilterChunk(const std::vector<uint8_t>& chunk,
                                         uint32_t part, uint32_t num_parts) {
  SDG_ASSIGN_OR_RETURN(ChunkReader reader, ChunkReader::Open(chunk));
  ChunkBuilder builder(reader.se_name(), reader.options());
  SDG_RETURN_IF_ERROR(reader.ForEach([&](const ChunkRecordView& rec) {
    if (rec.key_hash % num_parts != part) {
      return;
    }
    if (rec.tombstone) {
      builder.AddTombstone(rec.key_hash, rec.payload, rec.size);
    } else {
      builder.AddRecord(rec.key_hash, rec.payload, rec.size);
    }
  }));
  return std::move(builder).Finish();
}

Status RestoreChunk(StateBackend& backend, const std::vector<uint8_t>& chunk) {
  SDG_ASSIGN_OR_RETURN(ChunkReader reader, ChunkReader::Open(chunk));
  Status status;
  SDG_RETURN_IF_ERROR(reader.ForEach([&](const ChunkRecordView& rec) {
    if (!status.ok()) {
      return;
    }
    status = rec.tombstone ? backend.RestoreErase(rec.payload, rec.size)
                           : backend.RestoreRecord(rec.payload, rec.size);
  }));
  return status;
}

std::vector<std::vector<uint8_t>> SerializeToChunks(const StateBackend& backend,
                                                    std::string_view se_name,
                                                    uint32_t m,
                                                    ChunkOptions options) {
  std::vector<ChunkBuilder> builders;
  builders.reserve(m);
  for (uint32_t i = 0; i < m; ++i) {
    builders.emplace_back(std::string(se_name), options);
  }
  backend.SerializeRecords(
      [&](uint64_t key_hash, const uint8_t* payload, size_t size) {
        builders[key_hash % m].AddRecord(key_hash, payload, size);
      });
  std::vector<std::vector<uint8_t>> out;
  out.reserve(m);
  for (auto& b : builders) {
    out.push_back(std::move(b).Finish());
  }
  return out;
}

}  // namespace sdg::state
