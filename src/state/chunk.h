// Checkpoint chunks: the on-wire/on-disk unit of the m-to-n backup/restore
// protocol (§5, Fig. 4).
//
// A chunk is a byte blob holding (key_hash, payload) records emitted by a
// StateBackend. Because every record carries its partitioning hash in the
// frame, a backup node can split a chunk into n sub-chunks for parallel
// restore (step R1) *without* knowing the state's type or deserialising
// payloads.
//
// Layout: [magic u32][version u32][se_name string][record_count u64]
//         then per record: [key_hash u64][payload_len u64][payload bytes]
#ifndef SDG_STATE_CHUNK_H_
#define SDG_STATE_CHUNK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/state/state_backend.h"

namespace sdg::state {

inline constexpr uint32_t kChunkMagic = 0x53444743;  // "SDGC"
inline constexpr uint32_t kChunkVersion = 1;

// Accumulates records into one chunk blob.
class ChunkBuilder {
 public:
  explicit ChunkBuilder(std::string se_name);

  void AddRecord(uint64_t key_hash, const uint8_t* payload, size_t size);

  // A RecordSink forwarding into this builder.
  RecordSink AsSink();

  uint64_t record_count() const { return record_count_; }
  size_t size_bytes() const;

  // Finalises the header and returns the blob; the builder is consumed.
  std::vector<uint8_t> Finish() &&;

 private:
  std::string se_name_;
  std::vector<uint8_t> body_;
  uint64_t record_count_ = 0;
};

// Parsed chunk metadata plus a cursor over its records.
class ChunkReader {
 public:
  static Result<ChunkReader> Open(const std::vector<uint8_t>& chunk);

  const std::string& se_name() const { return se_name_; }
  uint64_t record_count() const { return record_count_; }

  // Calls `fn(key_hash, payload, size)` for every record.
  Status ForEachRecord(const RecordSink& fn) const;

 private:
  ChunkReader(std::string se_name, uint64_t record_count, const uint8_t* body,
              size_t body_size)
      : se_name_(std::move(se_name)),
        record_count_(record_count),
        body_(body),
        body_size_(body_size) {}

  std::string se_name_;
  uint64_t record_count_;
  const uint8_t* body_;  // points into the caller's chunk buffer
  size_t body_size_;
};

// Splits `chunk` into `n` chunks, assigning each record by key_hash % n.
// Payloads are copied verbatim; no state type knowledge required.
Result<std::vector<std::vector<uint8_t>>> SplitChunk(
    const std::vector<uint8_t>& chunk, uint32_t n);

// Splits `chunk`, keeping only the records for partition `part` of
// `num_parts` (what one recovering node receives).
Result<std::vector<uint8_t>> FilterChunk(const std::vector<uint8_t>& chunk,
                                         uint32_t part, uint32_t num_parts);

// Feeds every record of `chunk` into `backend` via RestoreRecord.
Status RestoreChunk(StateBackend& backend, const std::vector<uint8_t>& chunk);

// Serialises `backend` into `m` chunks, records distributed by key_hash % m
// (step B1 of the backup protocol).
std::vector<std::vector<uint8_t>> SerializeToChunks(const StateBackend& backend,
                                                    std::string_view se_name,
                                                    uint32_t m);

}  // namespace sdg::state

#endif  // SDG_STATE_CHUNK_H_
