// Checkpoint chunks: the on-wire/on-disk unit of the m-to-n backup/restore
// protocol (§5, Fig. 4).
//
// A chunk is a byte blob holding (key_hash, payload) records emitted by a
// StateBackend. Because every record carries its partitioning hash in the
// frame, a backup node can split a chunk into n sub-chunks for parallel
// restore (step R1) *without* knowing the state's type or deserialising
// payloads.
//
// v1 layout: [magic u32][version=1 u32][se_name string][record_count u64]
//            then per record: [key_hash u64][payload_len u64][payload]
//
// v2 layout: [magic u32][version=2 u32][se_name string][record_count u64]
//            [codec u8][flags u8]
//            then per record: [key_hash u64][record_flags u8]
//                             [varint payload_len][payload bytes]
//            With kChunkCodecPrefix the payload bytes are replaced by
//            [varint shared_prefix_len][suffix]: the longest common prefix
//            with the previous record's payload in the same chunk is elided.
//            record_flags bit0 marks a tombstone — a record erased since the
//            previous epoch, whose payload encodes only the key. A header
//            record_count of kStreamedRecordCount means the chunk was
//            streamed segment-by-segment and readers iterate to the end of
//            the body instead of counting (checkpoint completeness is
//            guaranteed by the epoch's meta record, which is written last).
#ifndef SDG_STATE_CHUNK_H_
#define SDG_STATE_CHUNK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/state/state_backend.h"

namespace sdg::state {

inline constexpr uint32_t kChunkMagic = 0x53444743;  // "SDGC"
inline constexpr uint32_t kChunkVersion = 1;
inline constexpr uint32_t kChunkVersion2 = 2;

// v2 header record_count for streamed chunks (exact count unknown until the
// stream closes); readers walk the body to the end instead.
inline constexpr uint64_t kStreamedRecordCount = ~0ull;

// v2 header flags.
inline constexpr uint8_t kChunkFlagDelta = 1;  // delta epoch: apply over a base
// v2 per-record flags.
inline constexpr uint8_t kRecordFlagTombstone = 1;

// Frame parameters of one chunk. Defaults produce the v1 frame, byte-for-byte
// what pre-delta checkpoints wrote; any v2 feature needs version 2.
struct ChunkOptions {
  uint32_t version = kChunkVersion;
  uint8_t codec = 0;   // kChunkCodec*; v2 only
  bool delta = false;  // v2 only
};

// One parsed record, including delta-only attributes. `payload` is valid only
// for the duration of the visiting call (it may point into decode scratch).
struct ChunkRecordView {
  uint64_t key_hash = 0;
  const uint8_t* payload = nullptr;
  size_t size = 0;
  bool tombstone = false;
};
using ChunkRecordFn = std::function<void(const ChunkRecordView&)>;

// Serialised header for `options`; record frames follow directly.
std::vector<uint8_t> BuildChunkHeader(const ChunkOptions& options,
                                      std::string_view se_name,
                                      uint64_t record_count);

// Appends one record frame to `out`. `prev_payload` is the running
// prefix-dedup context of the destination chunk (kChunkCodecPrefix); it is
// updated to this record's payload. Shared by ChunkBuilder and the streaming
// checkpoint writer, which frames straight into fixed-size segments.
void AppendRecordFrame(const ChunkOptions& options, uint64_t key_hash,
                       const uint8_t* payload, size_t size, bool tombstone,
                       std::vector<uint8_t>& out,
                       std::vector<uint8_t>& prev_payload);

// Accumulates records into one chunk blob.
class ChunkBuilder {
 public:
  explicit ChunkBuilder(std::string se_name, ChunkOptions options = {});

  void AddRecord(uint64_t key_hash, const uint8_t* payload, size_t size);
  // v2 only: records an erase (payload = encoded key) for a delta chunk.
  void AddTombstone(uint64_t key_hash, const uint8_t* payload, size_t size);

  // A RecordSink forwarding into this builder.
  RecordSink AsSink();

  uint64_t record_count() const { return record_count_; }
  size_t size_bytes() const;

  // Finalises the header and returns the blob; the builder is consumed.
  std::vector<uint8_t> Finish() &&;

 private:
  std::string se_name_;
  ChunkOptions options_;
  std::vector<uint8_t> body_;
  std::vector<uint8_t> prev_payload_;  // prefix-dedup context
  uint64_t record_count_ = 0;
};

// Parsed chunk metadata plus a cursor over its records.
class ChunkReader {
 public:
  static Result<ChunkReader> Open(const std::vector<uint8_t>& chunk);

  const std::string& se_name() const { return se_name_; }
  // Exact for v1 and materialised v2 chunks; kStreamedRecordCount for
  // streamed chunks.
  uint64_t record_count() const { return record_count_; }
  uint32_t version() const { return options_.version; }
  uint8_t codec() const { return options_.codec; }
  bool is_delta() const { return options_.delta; }
  // Frame parameters, for re-encoding records into equivalent chunks
  // (SplitChunk / FilterChunk).
  const ChunkOptions& options() const { return options_; }

  // Calls `fn` for every record, tombstones included. Compressed payloads are
  // materialised into internal scratch valid only during the call.
  Status ForEach(const ChunkRecordFn& fn) const;

  // Legacy walk: calls `fn(key_hash, payload, size)` for every record. Fails
  // on tombstones — pre-delta callers cannot represent an erase.
  Status ForEachRecord(const RecordSink& fn) const;

 private:
  ChunkReader(std::string se_name, uint64_t record_count, ChunkOptions options,
              const uint8_t* body, size_t body_size)
      : se_name_(std::move(se_name)),
        record_count_(record_count),
        options_(options),
        body_(body),
        body_size_(body_size) {}

  std::string se_name_;
  uint64_t record_count_;
  ChunkOptions options_;
  const uint8_t* body_;  // points into the caller's chunk buffer
  size_t body_size_;
};

// Splits `chunk` into `n` chunks, assigning each record by key_hash % n.
// Frame version, codec and the delta flag are preserved, so a delta chunk
// splits into n delta chunks whose tombstones survive the split.
Result<std::vector<std::vector<uint8_t>>> SplitChunk(
    const std::vector<uint8_t>& chunk, uint32_t n);

// Splits `chunk`, keeping only the records for partition `part` of
// `num_parts` (what one recovering node receives).
Result<std::vector<uint8_t>> FilterChunk(const std::vector<uint8_t>& chunk,
                                         uint32_t part, uint32_t num_parts);

// Feeds every record of `chunk` into `backend`: RestoreRecord for live
// records, RestoreErase for tombstones (delta chunks).
Status RestoreChunk(StateBackend& backend, const std::vector<uint8_t>& chunk);

// Serialises `backend` into `m` fully materialised chunks, records
// distributed by key_hash % m (step B1 of the backup protocol). This is the
// non-streaming baseline path; the checkpoint runtime streams via
// checkpoint::ChunkStreamWriter instead.
std::vector<std::vector<uint8_t>> SerializeToChunks(const StateBackend& backend,
                                                    std::string_view se_name,
                                                    uint32_t m,
                                                    ChunkOptions options = {});

}  // namespace sdg::state

#endif  // SDG_STATE_CHUNK_H_
