// Per-type encode/decode/hash used by the keyed state structures. The hash is
// the partitioning hash: key-partitioned dispatch, partitioned-SE placement
// and checkpoint chunking must all agree on it.
#ifndef SDG_STATE_CODEC_H_
#define SDG_STATE_CODEC_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/hash.h"
#include "src/common/serialize.h"
#include "src/common/status.h"

namespace sdg::state {

template <typename T>
struct Codec;

template <typename T>
  requires std::is_integral_v<T>
struct Codec<T> {
  static void Encode(BinaryWriter& w, T v) { w.Write<T>(v); }
  static Result<T> Decode(BinaryReader& r) { return r.Read<T>(); }
  static uint64_t Hash(T v) { return MixHash64(static_cast<uint64_t>(v)); }
};

template <>
struct Codec<double> {
  static void Encode(BinaryWriter& w, double v) { w.Write<double>(v); }
  static Result<double> Decode(BinaryReader& r) { return r.Read<double>(); }
  static uint64_t Hash(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return MixHash64(bits);
  }
};

template <>
struct Codec<std::string> {
  static void Encode(BinaryWriter& w, const std::string& v) { w.WriteString(v); }
  static Result<std::string> Decode(BinaryReader& r) { return r.ReadString(); }
  static uint64_t Hash(const std::string& v) { return Fnv1a64(v); }
};

template <>
struct Codec<std::vector<double>> {
  static void Encode(BinaryWriter& w, const std::vector<double>& v) {
    w.WriteVector<double>(v);
  }
  static Result<std::vector<double>> Decode(BinaryReader& r) {
    return r.ReadVector<double>();
  }
  static uint64_t Hash(const std::vector<double>& v) {
    uint64_t h = 0xd0;
    for (double d : v) {
      h = HashCombine(h, Codec<double>::Hash(d));
    }
    return h;
  }
};

template <>
struct Codec<std::vector<int64_t>> {
  static void Encode(BinaryWriter& w, const std::vector<int64_t>& v) {
    w.WriteVector<int64_t>(v);
  }
  static Result<std::vector<int64_t>> Decode(BinaryReader& r) {
    return r.ReadVector<int64_t>();
  }
  static uint64_t Hash(const std::vector<int64_t>& v) {
    uint64_t h = 0x10;
    for (int64_t i : v) {
      h = HashCombine(h, static_cast<uint64_t>(i));
    }
    return h;
  }
};

}  // namespace sdg::state

#endif  // SDG_STATE_CODEC_H_
