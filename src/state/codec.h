// Per-type encode/decode/hash used by the keyed state structures. The hash is
// the partitioning hash: key-partitioned dispatch, partitioned-SE placement
// and checkpoint chunking must all agree on it.
#ifndef SDG_STATE_CODEC_H_
#define SDG_STATE_CODEC_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/hash.h"
#include "src/common/serialize.h"
#include "src/common/status.h"

namespace sdg::state {

// --- Chunk compression codecs -----------------------------------------------
// The v2 chunk frame carries a per-chunk codec byte; writers pick a codec,
// ChunkReader decodes transparently, and SplitChunk/FilterChunk re-encode
// with the source chunk's codec. Negotiation is by this byte alone — an
// unknown codec is a data-loss error, never a silent misread.
inline constexpr uint8_t kChunkCodecNone = 0;
// Varint record lengths plus longest-common-prefix dedup against the
// previous record payload of the same chunk. Keyed records (length-prefixed
// key then value) share encoded prefixes often enough to make this the
// cheap, dependency-free default compressor.
inline constexpr uint8_t kChunkCodecPrefix = 1;

inline constexpr bool ChunkCodecKnown(uint8_t codec) {
  return codec == kChunkCodecNone || codec == kChunkCodecPrefix;
}

// LEB128 varint, used by the v2 chunk frame for record lengths.
inline void AppendVarint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

inline Result<uint64_t> ReadVarint(BinaryReader& r) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    SDG_ASSIGN_OR_RETURN(uint8_t byte, r.Read<uint8_t>());
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
  }
  return Status(StatusCode::kDataLoss, "varint overruns 64 bits");
}

template <typename T>
struct Codec;

template <typename T>
  requires std::is_integral_v<T>
struct Codec<T> {
  static void Encode(BinaryWriter& w, T v) { w.Write<T>(v); }
  static Result<T> Decode(BinaryReader& r) { return r.Read<T>(); }
  static uint64_t Hash(T v) { return MixHash64(static_cast<uint64_t>(v)); }
};

template <>
struct Codec<double> {
  static void Encode(BinaryWriter& w, double v) { w.Write<double>(v); }
  static Result<double> Decode(BinaryReader& r) { return r.Read<double>(); }
  static uint64_t Hash(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return MixHash64(bits);
  }
};

template <>
struct Codec<std::string> {
  static void Encode(BinaryWriter& w, const std::string& v) { w.WriteString(v); }
  static Result<std::string> Decode(BinaryReader& r) { return r.ReadString(); }
  static uint64_t Hash(const std::string& v) { return Fnv1a64(v); }
};

template <>
struct Codec<std::vector<double>> {
  static void Encode(BinaryWriter& w, const std::vector<double>& v) {
    w.WriteVector<double>(v);
  }
  static Result<std::vector<double>> Decode(BinaryReader& r) {
    return r.ReadVector<double>();
  }
  static uint64_t Hash(const std::vector<double>& v) {
    uint64_t h = 0xd0;
    for (double d : v) {
      h = HashCombine(h, Codec<double>::Hash(d));
    }
    return h;
  }
};

template <>
struct Codec<std::vector<int64_t>> {
  static void Encode(BinaryWriter& w, const std::vector<int64_t>& v) {
    w.WriteVector<int64_t>(v);
  }
  static Result<std::vector<int64_t>> Decode(BinaryReader& r) {
    return r.ReadVector<int64_t>();
  }
  static uint64_t Hash(const std::vector<int64_t>& v) {
    uint64_t h = 0x10;
    for (int64_t i : v) {
      h = HashCombine(h, static_cast<uint64_t>(i));
    }
    return h;
  }
};

}  // namespace sdg::state

#endif  // SDG_STATE_CODEC_H_
