#include "src/state/vector_state.h"

#include <algorithm>

namespace sdg::state {

double VectorState::Get(size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (checkpoint_active_) {
    auto it = dirty_.find(i);
    if (it != dirty_.end()) {
      return it->second;
    }
  }
  return i < data_.size() ? data_[i] : 0.0;
}

void VectorState::Set(size_t i, double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Touch(i / kBlockSize);
  if (checkpoint_active_) {
    dirty_[i] = v;
    return;
  }
  if (i >= data_.size()) {
    data_.resize(i + 1, 0.0);
  }
  data_[i] = v;
}

void VectorState::Add(size_t i, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Touch(i / kBlockSize);
  if (checkpoint_active_) {
    auto it = dirty_.find(i);
    double base = it != dirty_.end()
                      ? it->second
                      : (i < data_.size() ? data_[i] : 0.0);
    dirty_[i] = base + delta;
    return;
  }
  if (i >= data_.size()) {
    data_.resize(i + 1, 0.0);
  }
  data_[i] += delta;
}

void VectorState::Accumulate(const std::vector<double>& other) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t block = 0; block * kBlockSize < other.size(); ++block) {
    delta_.Touch(block);
  }
  if (checkpoint_active_) {
    for (size_t i = 0; i < other.size(); ++i) {
      auto it = dirty_.find(i);
      double base = it != dirty_.end()
                        ? it->second
                        : (i < data_.size() ? data_[i] : 0.0);
      dirty_[i] = base + other[i];
    }
    return;
  }
  if (other.size() > data_.size()) {
    data_.resize(other.size(), 0.0);
  }
  for (size_t i = 0; i < other.size(); ++i) {
    data_[i] += other[i];
  }
}

std::vector<double> VectorState::ToDense() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> out = data_;
  if (checkpoint_active_) {
    for (const auto& [i, v] : dirty_) {
      if (i >= out.size()) {
        out.resize(i + 1, 0.0);
      }
      out[i] = v;
    }
  }
  return out;
}

size_t VectorState::LogicalSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = data_.size();
  if (checkpoint_active_) {
    for (const auto& [i, v] : dirty_) {
      n = std::max(n, i + 1);
    }
  }
  return n;
}

size_t VectorState::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.size() * sizeof(double) + dirty_.size() * 24;
}

void VectorState::BeginCheckpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(!checkpoint_active_) << "checkpoint already active on VectorState";
  checkpoint_active_ = true;
  delta_.Freeze();
}

void VectorState::SerializeRecords(const RecordSink& sink) const {
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  if (!checkpoint_active()) {
    lock.lock();
  }
  for (size_t block = 0; block * kBlockSize < data_.size(); ++block) {
    size_t begin = block * kBlockSize;
    size_t end = std::min(begin + kBlockSize, data_.size());
    BinaryWriter w;
    w.Write<uint64_t>(block);
    w.Write<uint64_t>(end - begin);
    w.WriteBytes(data_.data() + begin, (end - begin) * sizeof(double));
    sink(MixHash64(block), w.buffer().data(), w.buffer().size());
  }
}

uint64_t VectorState::EndCheckpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(checkpoint_active_) << "EndCheckpoint without BeginCheckpoint";
  uint64_t consolidated = dirty_.size();
  for (const auto& [i, v] : dirty_) {
    if (i >= data_.size()) {
      data_.resize(i + 1, 0.0);
    }
    data_[i] = v;
  }
  dirty_.clear();
  checkpoint_active_ = false;
  return consolidated;
}

void VectorState::EnableDeltaTracking() {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Enable();
}

bool VectorState::DeltaReady() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delta_.Ready();
}

void VectorState::SerializeDirtyRecords(const DeltaRecordSink& sink) const {
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  if (!checkpoint_active()) {
    lock.lock();
  }
  for (size_t block : delta_.frozen()) {
    size_t begin = block * kBlockSize;
    if (begin >= data_.size()) {
      continue;  // touched while diverted to the overlay; folded later
    }
    size_t end = std::min(begin + kBlockSize, data_.size());
    BinaryWriter w;
    w.Write<uint64_t>(block);
    w.Write<uint64_t>(end - begin);
    w.WriteBytes(data_.data() + begin, (end - begin) * sizeof(double));
    sink(MixHash64(block), w.buffer().data(), w.buffer().size(),
         /*tombstone=*/false);
  }
}

void VectorState::ResolveEpoch(bool committed) {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Resolve(committed);
}

void VectorState::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.clear();
  dirty_.clear();
  delta_.Invalidate();
}

Status VectorState::RestoreRecord(const uint8_t* payload, size_t size) {
  BinaryReader r(payload, size);
  SDG_ASSIGN_OR_RETURN(uint64_t block, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t count, r.Read<uint64_t>());
  if (r.remaining() < count * sizeof(double)) {
    return Status(StatusCode::kDataLoss, "short VectorState block record");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  size_t begin = block * kBlockSize;
  if (begin + count > data_.size()) {
    data_.resize(begin + count, 0.0);
  }
  for (uint64_t i = 0; i < count; ++i) {
    auto v = r.Read<double>();
    data_[begin + i] = v.value();
  }
  delta_.Invalidate();
  return Status::Ok();
}

Status VectorState::ExtractPartition(uint32_t part, uint32_t num_parts,
                                     const RecordSink& sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (checkpoint_active_) {
    return FailedPreconditionError(
        "cannot repartition VectorState during an active checkpoint");
  }
  for (size_t block = 0; block * kBlockSize < data_.size(); ++block) {
    uint64_t h = MixHash64(block);
    if (h % num_parts != part) {
      continue;
    }
    size_t begin = block * kBlockSize;
    size_t end = std::min(begin + kBlockSize, data_.size());
    BinaryWriter w;
    w.Write<uint64_t>(block);
    w.Write<uint64_t>(end - begin);
    w.WriteBytes(data_.data() + begin, (end - begin) * sizeof(double));
    sink(h, w.buffer().data(), w.buffer().size());
    std::fill(data_.begin() + static_cast<ptrdiff_t>(begin),
              data_.begin() + static_cast<ptrdiff_t>(end), 0.0);
  }
  delta_.Invalidate();
  return Status::Ok();
}

}  // namespace sdg::state
