#include "src/state/vector_state.h"

#include <algorithm>

namespace sdg::state {

double VectorState::Get(size_t i) const {
  return shards_.Read(HashOfIndex(i), [&](const VecShard& sh, bool active) {
    if (active) {
      auto it = sh.dirty.find(i);
      if (it != sh.dirty.end()) {
        return it->second;
      }
    }
    // data_ resizes only with every stripe exclusive, so size and element
    // reads under this stripe's shared lock are race-free.
    return i < data_.size() ? data_[i] : 0.0;
  });
}

void VectorState::Set(size_t i, double v) {
  const uint64_t h = HashOfIndex(i);
  bool done = shards_.Write(
      h, [&](VecShard& sh, DeltaTracker<size_t>& delta, bool active) {
        if (delta.enabled()) {
          delta.Touch(i / kBlockSize);
        }
        if (active) {
          sh.dirty[i] = v;  // writes beyond size stay in the overlay
          return true;
        }
        if (i < data_.size()) {
          data_[i] = v;
          return true;
        }
        return false;  // needs growth: escalate to the all-stripe lock
      });
  if (done) {
    return;
  }
  shards_.WriteAll([&](bool active) {
    auto& stripe = shards_.stripe(shards_.ShardOf(h));
    if (active) {  // a checkpoint began between the two lock scopes
      stripe.data.dirty[i] = v;
      return;
    }
    if (i >= data_.size()) {
      data_.resize(i + 1, 0.0);
    }
    data_[i] = v;
  });
}

void VectorState::Add(size_t i, double delta_v) {
  const uint64_t h = HashOfIndex(i);
  bool done = shards_.Write(
      h, [&](VecShard& sh, DeltaTracker<size_t>& delta, bool active) {
        if (delta.enabled()) {
          delta.Touch(i / kBlockSize);
        }
        if (active) {
          auto it = sh.dirty.find(i);
          double base = it != sh.dirty.end()
                            ? it->second
                            : (i < data_.size() ? data_[i] : 0.0);
          sh.dirty[i] = base + delta_v;
          return true;
        }
        if (i < data_.size()) {
          data_[i] += delta_v;
          return true;
        }
        return false;
      });
  if (done) {
    return;
  }
  shards_.WriteAll([&](bool active) {
    auto& stripe = shards_.stripe(shards_.ShardOf(h));
    if (active) {
      auto it = stripe.data.dirty.find(i);
      double base = it != stripe.data.dirty.end()
                        ? it->second
                        : (i < data_.size() ? data_[i] : 0.0);
      stripe.data.dirty[i] = base + delta_v;
      return;
    }
    if (i >= data_.size()) {
      data_.resize(i + 1, 0.0);
    }
    data_[i] += delta_v;
  });
}

void VectorState::Accumulate(const std::vector<double>& other) {
  shards_.WriteAll([&](bool active) {
    for (size_t block = 0; block * kBlockSize < other.size(); ++block) {
      auto& delta = shards_.stripe(shards_.ShardOf(BlockHash(block))).delta;
      if (delta.enabled()) {
        delta.Touch(block);
      }
    }
    if (active) {
      for (size_t i = 0; i < other.size(); ++i) {
        auto& dirty = shards_.stripe(shards_.ShardOf(HashOfIndex(i))).data.dirty;
        auto it = dirty.find(i);
        double base = it != dirty.end()
                          ? it->second
                          : (i < data_.size() ? data_[i] : 0.0);
        dirty[i] = base + other[i];
      }
      return;
    }
    if (other.size() > data_.size()) {
      data_.resize(other.size(), 0.0);
    }
    for (size_t i = 0; i < other.size(); ++i) {
      data_[i] += other[i];
    }
  });
}

std::vector<double> VectorState::MergedLocked() const {
  std::vector<double> out = data_;
  for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
    for (const auto& [i, v] : shards_.stripe(s).data.dirty) {
      if (i >= out.size()) {
        out.resize(i + 1, 0.0);
      }
      out[i] = v;
    }
  }
  return out;
}

std::vector<double> VectorState::ToDense() const {
  return shards_.ReadAll([&](bool active) {
    if (!active) {
      return data_;
    }
    return MergedLocked();
  });
}

size_t VectorState::LogicalSize() const {
  return shards_.ReadAll([&](bool active) {
    size_t n = data_.size();
    if (active) {
      for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
        for (const auto& [i, v] : shards_.stripe(s).data.dirty) {
          n = std::max(n, i + 1);
        }
      }
    }
    return n;
  });
}

size_t VectorState::SizeBytes() const {
  return shards_.ReadAll([&](bool) {
    size_t n = data_.size() * sizeof(double);
    for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
      n += shards_.stripe(s).data.dirty.size() * 24;
    }
    return n;
  });
}

void VectorState::BeginCheckpoint() { shards_.BeginCheckpoint("VectorState"); }

void VectorState::SerializeRecords(const RecordSink& sink) const {
  // Whole-backend serialise walks the dense array once in block order — one
  // sequential sweep instead of num_shards passes each skipping the blocks
  // the other stripes own.
  auto all = shards_.SerializeLockAll();
  BinaryWriter w;
  for (size_t block = 0; block * kBlockSize < data_.size(); ++block) {
    size_t begin = block * kBlockSize;
    size_t end = std::min(begin + kBlockSize, data_.size());
    w.Clear();
    w.Write<uint64_t>(block);
    w.Write<uint64_t>(end - begin);
    w.WriteBytes(data_.data() + begin, (end - begin) * sizeof(double));
    sink(BlockHash(block), w.buffer().data(), w.buffer().size());
  }
}

void VectorState::SerializeShardRecords(uint32_t shard,
                                        const RecordSink& sink) const {
  auto lock = shards_.SerializeLock(shard);
  BinaryWriter w;
  for (size_t block = 0; block * kBlockSize < data_.size(); ++block) {
    uint64_t h = BlockHash(block);
    if (shards_.ShardOf(h) != shard) {
      continue;
    }
    size_t begin = block * kBlockSize;
    size_t end = std::min(begin + kBlockSize, data_.size());
    w.Clear();
    w.Write<uint64_t>(block);
    w.Write<uint64_t>(end - begin);
    w.WriteBytes(data_.data() + begin, (end - begin) * sizeof(double));
    sink(h, w.buffer().data(), w.buffer().size());
  }
}

uint64_t VectorState::EndCheckpoint() {
  return shards_.EndCheckpoint("VectorState", [&](uint32_t, VecShard& sh) {
    uint64_t consolidated = sh.dirty.size();
    for (const auto& [i, v] : sh.dirty) {
      if (i >= data_.size()) {
        data_.resize(i + 1, 0.0);
      }
      data_[i] = v;
    }
    sh.dirty.clear();
    return consolidated;
  });
}

void VectorState::EnableDeltaTracking() { shards_.EnableDeltaTracking(); }

bool VectorState::DeltaReady() const { return shards_.DeltaReady(); }

void VectorState::SerializeDirtyRecords(const DeltaRecordSink& sink) const {
  for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
    SerializeShardDirtyRecords(s, sink);
  }
}

void VectorState::SerializeShardDirtyRecords(
    uint32_t shard, const DeltaRecordSink& sink) const {
  auto lock = shards_.SerializeLock(shard);
  BinaryWriter w;
  for (size_t block : shards_.stripe(shard).delta.frozen()) {
    size_t begin = block * kBlockSize;
    if (begin >= data_.size()) {
      continue;  // touched while diverted to the overlay; folded later
    }
    size_t end = std::min(begin + kBlockSize, data_.size());
    w.Clear();
    w.Write<uint64_t>(block);
    w.Write<uint64_t>(end - begin);
    w.WriteBytes(data_.data() + begin, (end - begin) * sizeof(double));
    sink(BlockHash(block), w.buffer().data(), w.buffer().size(),
         /*tombstone=*/false);
  }
}

void VectorState::ResolveEpoch(bool committed) {
  shards_.ResolveEpoch(committed);
}

void VectorState::Clear() {
  shards_.ClearAll([&](uint32_t s, VecShard& sh) {
    if (s == 0) {
      data_.clear();
    }
    sh.dirty.clear();
  });
}

Status VectorState::RestoreRecord(const uint8_t* payload, size_t size) {
  BinaryReader r(payload, size);
  SDG_ASSIGN_OR_RETURN(uint64_t block, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t count, r.Read<uint64_t>());
  if (r.remaining() < count * sizeof(double)) {
    return Status(StatusCode::kDataLoss, "short VectorState block record");
  }
  const uint64_t h = BlockHash(block);
  const size_t begin = block * kBlockSize;
  auto install = [&](DeltaTracker<size_t>& delta) {
    for (uint64_t i = 0; i < count; ++i) {
      auto v = r.Read<double>();
      data_[begin + i] = v.value();
    }
    delta.Invalidate();
  };
  // Restores from parallel chunk ingestion land here concurrently: the fast
  // path takes only the owning stripe's lock; growth escalates.
  bool done =
      shards_.Write(h, [&](VecShard&, DeltaTracker<size_t>& delta, bool) {
        if (begin + count > data_.size()) {
          return false;
        }
        install(delta);
        return true;
      });
  if (!done) {
    shards_.WriteAll([&](bool) {
      if (begin + count > data_.size()) {
        data_.resize(begin + count, 0.0);
      }
      install(shards_.stripe(shards_.ShardOf(h)).delta);
    });
  }
  return Status::Ok();
}

Status VectorState::ExtractPartition(uint32_t part, uint32_t num_parts,
                                     const RecordSink& sink) {
  return shards_.WriteAll([&](bool active) -> Status {
    if (active) {
      return FailedPreconditionError(
          "cannot repartition VectorState during an active checkpoint");
    }
    BinaryWriter w;
    for (size_t block = 0; block * kBlockSize < data_.size(); ++block) {
      uint64_t h = BlockHash(block);
      if (h % num_parts != part) {
        continue;
      }
      size_t begin = block * kBlockSize;
      size_t end = std::min(begin + kBlockSize, data_.size());
      w.Clear();
      w.Write<uint64_t>(block);
      w.Write<uint64_t>(end - begin);
      w.WriteBytes(data_.data() + begin, (end - begin) * sizeof(double));
      sink(h, w.buffer().data(), w.buffer().size());
      std::fill(data_.begin() + static_cast<ptrdiff_t>(begin),
                data_.begin() + static_cast<ptrdiff_t>(end), 0.0);
    }
    for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
      shards_.stripe(s).delta.Invalidate();
    }
    return Status::Ok();
  });
}

}  // namespace sdg::state
