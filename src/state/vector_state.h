// VectorState: a dense double vector SE, range-partitionable by index block.
//
// Used for logistic-regression weights (a @Partial SE in the paper's LR
// application) and as the merge result type for partial recommendation
// vectors in CF. Dirty state is an index->value overlay; checkpoint records
// are fixed-size blocks so that chunking and range partitioning agree.
#ifndef SDG_STATE_VECTOR_STATE_H_
#define SDG_STATE_VECTOR_STATE_H_

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/serialize.h"
#include "src/state/delta_tracker.h"
#include "src/state/state_backend.h"

namespace sdg::state {

class VectorState final : public StateBackend {
 public:
  static constexpr size_t kBlockSize = 1024;

  VectorState() = default;
  explicit VectorState(size_t size) : data_(size, 0.0) {}

  // --- Vector operations ----------------------------------------------------

  double Get(size_t i) const;
  void Set(size_t i, double v);
  void Add(size_t i, double delta);

  // Adds `other` element-wise, growing if needed (merge of partials).
  void Accumulate(const std::vector<double>& other);

  // Snapshot of the logical contents (main overlaid with dirty).
  std::vector<double> ToDense() const;

  size_t LogicalSize() const;

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "VectorState"; }
  size_t SizeBytes() const override;
  uint64_t EntryCount() const override { return LogicalSize(); }

  void BeginCheckpoint() override;
  void SerializeRecords(const RecordSink& sink) const override;
  uint64_t EndCheckpoint() override;
  bool checkpoint_active() const override {
    return checkpoint_active_.load(std::memory_order_acquire);
  }

  void EnableDeltaTracking() override;
  bool DeltaReady() const override;
  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override;
  void ResolveEpoch(bool committed) override;

  void Clear() override;
  Status RestoreRecord(const uint8_t* payload, size_t size) override;
  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override;

 private:
  mutable std::mutex mutex_;
  std::vector<double> data_;
  std::unordered_map<size_t, double> dirty_;
  DeltaTracker<size_t> delta_;  // delta granularity: kBlockSize index blocks
  std::atomic<bool> checkpoint_active_{false};
};

}  // namespace sdg::state

#endif  // SDG_STATE_VECTOR_STATE_H_
