// VectorState: a dense double vector SE, range-partitionable by index block.
//
// Used for logistic-regression weights (a @Partial SE in the paper's LR
// application) and as the merge result type for partial recommendation
// vectors in CF. Dirty state is an index->value overlay; checkpoint records
// are fixed-size blocks so that chunking and range partitioning agree.
//
// Striping: the vector stays one contiguous array, but each index block is
// owned by the stripe its block hash selects — element reads/writes take only
// that stripe's lock (distinct elements are distinct memory locations, so
// this is race-free), while growth, Accumulate, Fill-style ops, and the
// checkpoint transitions take every stripe exclusively via ShardedState.
#ifndef SDG_STATE_VECTOR_STATE_H_
#define SDG_STATE_VECTOR_STATE_H_

#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/serialize.h"
#include "src/state/sharded_state.h"
#include "src/state/state_backend.h"

namespace sdg::state {

class VectorState final : public StateBackend {
 public:
  static constexpr size_t kBlockSize = 1024;

  VectorState() : shards_(DefaultStateShards()) {}
  explicit VectorState(size_t size, uint32_t num_shards = DefaultStateShards())
      : shards_(num_shards), data_(size, 0.0) {}

  // --- Vector operations ----------------------------------------------------

  double Get(size_t i) const;
  void Set(size_t i, double v);
  void Add(size_t i, double delta);

  // Adds `other` element-wise, growing if needed (merge of partials).
  void Accumulate(const std::vector<double>& other);

  // Snapshot of the logical contents (main overlaid with dirty).
  std::vector<double> ToDense() const;

  // Zero-copy read of the whole vector: `fn(const double*, size_t)` runs with
  // every stripe held shared. When a checkpoint is active the overlay may
  // shadow the frozen array, so fn receives a merged temporary instead — the
  // fast path is the common no-checkpoint case.
  template <typename Fn>
  void View(Fn&& fn) const {
    shards_.ReadAll([&](bool active) {
      if (!active) {
        fn(data_.data(), data_.size());
        return;
      }
      std::vector<double> merged = MergedLocked();
      fn(merged.data(), merged.size());
    });
  }

  size_t LogicalSize() const;

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "VectorState"; }
  size_t SizeBytes() const override;
  uint64_t EntryCount() const override { return LogicalSize(); }

  void BeginCheckpoint() override;
  void SerializeRecords(const RecordSink& sink) const override;
  uint64_t EndCheckpoint() override;
  bool checkpoint_active() const override {
    return shards_.checkpoint_active();
  }

  void EnableDeltaTracking() override;
  bool DeltaReady() const override;
  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override;
  void ResolveEpoch(bool committed) override;

  uint32_t SerializeShardCount() const override {
    return shards_.num_shards();
  }
  void SerializeShardRecords(uint32_t shard,
                             const RecordSink& sink) const override;
  void SerializeShardDirtyRecords(uint32_t shard,
                                  const DeltaRecordSink& sink) const override;

  void Clear() override;
  Status RestoreRecord(const uint8_t* payload, size_t size) override;
  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override;

  void ExclusiveBarrier(const std::function<void()>& fn) override {
    shards_.WriteAll([&](bool) { fn(); });
  }

  // No cold tier: the stripes only partition the checkpoint overlay — the
  // values live in one contiguous array, so evicting a stripe cannot free
  // its share of memory.
  Status ConfigureSpill(const SpillConfig& config) override {
    (void)config;
    return UnimplementedError(
        "VectorState stores a contiguous dense array; per-stripe eviction "
        "cannot release memory — no cold-tier spill");
  }

 private:
  // One stripe's slice: the checkpoint overlay for the index blocks this
  // stripe owns (the dense array itself is shared, element-owned by stripe).
  struct VecShard {
    using DeltaId = size_t;  // delta granularity: kBlockSize index blocks
    std::unordered_map<size_t, double> dirty;
  };

  static uint64_t BlockHash(size_t block) { return MixHash64(block); }
  uint64_t HashOfIndex(size_t i) const { return BlockHash(i / kBlockSize); }

  // Merged main+overlay snapshot; caller must hold all stripes (any mode).
  std::vector<double> MergedLocked() const;

  ShardedState<VecShard> shards_;
  std::vector<double> data_;  // resized only with all stripes held exclusive
};

}  // namespace sdg::state

#endif  // SDG_STATE_VECTOR_STATE_H_
