// KeyedDict<K, V>: the hash-partitionable dictionary SE.
//
// This is the state structure behind the paper's key/value store application
// (§6.1) and the word-count state. It implements the full dirty-state
// protocol: while a checkpoint is active, writes land in an overlay map
// (erases become tombstones), reads consult the overlay first, and
// EndCheckpoint folds the overlay back under a short lock — the paper's claim
// that "the locking overhead reduces proportionally to the state update
// rate" (§6.4) falls out of the overlay size.
#ifndef SDG_STATE_KEYED_DICT_H_
#define SDG_STATE_KEYED_DICT_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/state/codec.h"
#include "src/state/delta_tracker.h"
#include "src/state/state_backend.h"

namespace sdg::state {

template <typename K, typename V>
class KeyedDict final : public StateBackend {
 public:
  KeyedDict() = default;

  // --- Map operations -------------------------------------------------------

  void Put(const K& key, V value) {
    std::lock_guard<std::mutex> lock(mutex_);
    delta_.Touch(key);
    if (checkpoint_active_) {
      dirty_[key] = std::move(value);
    } else {
      main_[key] = std::move(value);
    }
  }

  std::optional<V> Get(const K& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (checkpoint_active_) {
      auto it = dirty_.find(key);
      if (it != dirty_.end()) {
        return it->second;  // nullopt if tombstoned
      }
    }
    auto it = main_.find(key);
    if (it == main_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  bool Contains(const K& key) const { return Get(key).has_value(); }

  void Erase(const K& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    delta_.Touch(key);
    if (checkpoint_active_) {
      dirty_[key] = std::nullopt;  // tombstone
    } else {
      main_.erase(key);
    }
  }

  // Read-modify-write under the state lock; `fn` receives the current value
  // (default-constructed when absent) and returns the new one.
  template <typename Fn>
  void Update(const K& key, Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    delta_.Touch(key);
    V current{};
    if (checkpoint_active_) {
      auto it = dirty_.find(key);
      if (it != dirty_.end()) {
        if (it->second.has_value()) {
          current = *it->second;
        }
      } else if (auto mit = main_.find(key); mit != main_.end()) {
        current = mit->second;
      }
      dirty_[key] = fn(std::move(current));
    } else {
      auto it = main_.find(key);
      if (it != main_.end()) {
        current = it->second;
      }
      main_[key] = fn(std::move(current));
    }
  }

  // Visits the logically current contents (main overlaid with dirty) under
  // the lock. `fn` must not reenter this dict.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, v] : main_) {
      if (checkpoint_active_) {
        auto it = dirty_.find(k);
        if (it != dirty_.end()) {
          continue;  // overridden or tombstoned; visited via dirty below
        }
      }
      fn(k, v);
    }
    if (checkpoint_active_) {
      for (const auto& [k, v] : dirty_) {
        if (v.has_value()) {
          fn(k, *v);
        }
      }
    }
  }

  uint64_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t n = main_.size();
    if (checkpoint_active_) {
      for (const auto& [k, v] : dirty_) {
        bool in_main = main_.count(k) > 0;
        if (v.has_value() && !in_main) {
          ++n;
        } else if (!v.has_value() && in_main) {
          --n;
        }
      }
    }
    return n;
  }

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "KeyedDict"; }

  size_t SizeBytes() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t total = 0;
    for (const auto& [k, v] : main_) {
      total += DeepSize(k) + DeepSize(v) + 16;
    }
    for (const auto& [k, v] : dirty_) {
      total += DeepSize(k) + (v.has_value() ? DeepSize(*v) : 0) + 24;
    }
    return total;
  }

  uint64_t EntryCount() const override { return Size(); }

  void BeginCheckpoint() override {
    std::lock_guard<std::mutex> lock(mutex_);
    SDG_CHECK(!checkpoint_active_) << "checkpoint already active on KeyedDict";
    checkpoint_active_ = true;
    delta_.Freeze();
  }

  void SerializeRecords(const RecordSink& sink) const override {
    // While a checkpoint is active main_ is frozen, so iterate without the
    // lock (this is the "asynchronously to the processing" part of §5).
    // Otherwise hold the lock for the duration.
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (!checkpoint_active()) {
      lock.lock();
    }
    BinaryWriter w;
    for (const auto& [k, v] : main_) {
      w = BinaryWriter();
      Codec<K>::Encode(w, k);
      Codec<V>::Encode(w, v);
      sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size());
    }
  }

  uint64_t EndCheckpoint() override {
    std::lock_guard<std::mutex> lock(mutex_);
    SDG_CHECK(checkpoint_active_) << "EndCheckpoint without BeginCheckpoint";
    uint64_t consolidated = dirty_.size();
    for (auto& [k, v] : dirty_) {
      if (v.has_value()) {
        main_[k] = std::move(*v);
      } else {
        main_.erase(k);
      }
    }
    dirty_.clear();
    checkpoint_active_ = false;
    return consolidated;
  }

  bool checkpoint_active() const override {
    return checkpoint_active_.load(std::memory_order_acquire);
  }

  // --- Delta epochs ----------------------------------------------------------

  void EnableDeltaTracking() override {
    std::lock_guard<std::mutex> lock(mutex_);
    delta_.Enable();
  }

  bool DeltaReady() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return delta_.Ready();
  }

  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override {
    // Same concurrency contract as SerializeRecords: main_ and the frozen
    // change set are immutable while a checkpoint is active.
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    if (!checkpoint_active()) {
      lock.lock();
    }
    BinaryWriter w;
    for (const K& k : delta_.frozen()) {
      auto it = main_.find(k);
      w = BinaryWriter();
      Codec<K>::Encode(w, k);
      if (it == main_.end()) {
        // Erased since the previous epoch: tombstone, payload = key only.
        sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
             /*tombstone=*/true);
      } else {
        Codec<V>::Encode(w, it->second);
        sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
             /*tombstone=*/false);
      }
    }
  }

  void ResolveEpoch(bool committed) override {
    std::lock_guard<std::mutex> lock(mutex_);
    delta_.Resolve(committed);
  }

  void Clear() override {
    std::lock_guard<std::mutex> lock(mutex_);
    main_.clear();
    dirty_.clear();
    delta_.Invalidate();
  }

  Status RestoreRecord(const uint8_t* payload, size_t size) override {
    BinaryReader r(payload, size);
    SDG_ASSIGN_OR_RETURN(K key, Codec<K>::Decode(r));
    SDG_ASSIGN_OR_RETURN(V value, Codec<V>::Decode(r));
    std::lock_guard<std::mutex> lock(mutex_);
    main_[std::move(key)] = std::move(value);
    delta_.Invalidate();
    return Status::Ok();
  }

  Status RestoreErase(const uint8_t* payload, size_t size) override {
    BinaryReader r(payload, size);
    SDG_ASSIGN_OR_RETURN(K key, Codec<K>::Decode(r));
    std::lock_guard<std::mutex> lock(mutex_);
    main_.erase(key);  // absent is fine: the base may predate the key
    delta_.Invalidate();
    return Status::Ok();
  }

  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (checkpoint_active_) {
      return FailedPreconditionError(
          "cannot repartition KeyedDict during an active checkpoint");
    }
    BinaryWriter w;
    for (auto it = main_.begin(); it != main_.end();) {
      uint64_t h = Codec<K>::Hash(it->first);
      if (h % num_parts == part) {
        w = BinaryWriter();
        Codec<K>::Encode(w, it->first);
        Codec<V>::Encode(w, it->second);
        sink(h, w.buffer().data(), w.buffer().size());
        it = main_.erase(it);
      } else {
        ++it;
      }
    }
    delta_.Invalidate();
    return Status::Ok();
  }

  // Approximate number of dirty entries (for tests and metrics).
  uint64_t DirtySize() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dirty_.size();
  }

  // Entries the next delta epoch would cover (for tests and metrics).
  uint64_t DeltaChangedCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return delta_.ChangedCount();
  }

 private:
  // Memory accounting that sees through the common value types.
  template <typename T>
  static size_t DeepSize(const T& v) {
    if constexpr (std::is_same_v<T, std::string>) {
      return sizeof(T) + v.size();
    } else if constexpr (std::is_same_v<T, std::vector<double>> ||
                         std::is_same_v<T, std::vector<int64_t>>) {
      return sizeof(T) + v.size() * sizeof(typename T::value_type);
    } else {
      return sizeof(T);
    }
  }

  mutable std::mutex mutex_;
  std::unordered_map<K, V> main_;
  std::unordered_map<K, std::optional<V>> dirty_;
  DeltaTracker<K> delta_;  // delta granularity: keys
  // Written only under mutex_; atomic so the checkpoint thread can observe it
  // without taking the state lock.
  std::atomic<bool> checkpoint_active_{false};
};

}  // namespace sdg::state

#endif  // SDG_STATE_KEYED_DICT_H_
