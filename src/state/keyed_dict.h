// KeyedDict<K, V>: the hash-partitionable dictionary SE.
//
// This is the state structure behind the paper's key/value store application
// (§6.1) and the word-count state. It implements the full dirty-state
// protocol: while a checkpoint is active, writes land in an overlay map
// (erases become tombstones), reads consult the overlay first, and
// EndCheckpoint folds the overlay back under a short lock — the paper's claim
// that "the locking overhead reduces proportionally to the state update
// rate" (§6.4) falls out of the overlay size.
//
// The dictionary is hash-striped over ShardedState: every entry lives in the
// stripe its partitioning hash selects, single-key operations take only that
// stripe's shared_mutex, and checkpoint serialisation walks stripes
// independently (SerializeShardRecords) so the driver can fan it across a
// thread pool.
//
// Cold tier (ConfigureSpill): under a resident-byte budget, whole stripes are
// evicted to chunk-framed spill files and paged back transparently. The
// per-stripe picture once spilled:
//   - `main` is empty (its merged contents live in the stripe's spill blob),
//   - `cold` absorbs post-spill writes in O(1) (nullopt = erased relative to
//     the blob) so a Put/Erase/Update on a cold stripe never rehydrates,
//   - a read that misses `cold` pages the whole stripe back in under the
//     stripe's exclusive lock (fault-in), EXCEPT while a checkpoint is
//     active, when the blob is part of the frozen snapshot and single keys
//     are answered straight from disk instead.
// Read precedence on a spilled stripe: dirty (checkpoint overlay, if active)
// > cold > blob. Because the blob is already chunk-framed, checkpoints,
// delta epochs, migration streaming and the replica feed all serialize a
// spilled stripe record-by-record from disk without rehydration.
// Eviction and fault-in are disabled while a checkpoint is active (the main
// structure and blob must stay frozen for the lock-free serialize walk), so
// the spilled set is stable across any one checkpoint.
#ifndef SDG_STATE_KEYED_DICT_H_
#define SDG_STATE_KEYED_DICT_H_

#include <atomic>
#include <iterator>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/state/chunk.h"
#include "src/state/codec.h"
#include "src/state/sharded_state.h"
#include "src/state/spill.h"
#include "src/state/state_backend.h"

namespace sdg::state {

template <typename K, typename V>
class KeyedDict final : public StateBackend {
 public:
  explicit KeyedDict(uint32_t num_shards = DefaultStateShards())
      : shards_(num_shards) {}

  // --- Map operations -------------------------------------------------------

  void Put(const K& key, V value) {
    const uint64_t h = Codec<K>::Hash(key);
    const bool spill = shards_.spill_enabled();
    const uint32_t s = shards_.ShardOf(h);
    auto& st = shards_.stripe(s);
    {
      std::unique_lock<std::shared_mutex> lock(st.mutex);
      if (st.delta.enabled()) {  // non-delta hot path pays nothing
        st.delta.Touch(key);
      }
      if (shards_.checkpoint_active()) {
        st.data.dirty[key] = std::move(value);
      } else if (!spill) {
        st.data.main[key] = std::move(value);
      } else {
        st.ref.store(1, std::memory_order_relaxed);
        if (st.spilled.load(std::memory_order_relaxed)) {
          NoteBytes(st, PutColdAccounted(st.data, key,
                                         std::optional<V>(std::move(value))));
        } else {
          NoteBytes(st, PutMainAccounted(st.data, key, value));
        }
      }
    }
    if (spill) {
      MaybeEvict(s);
    }
  }

  std::optional<V> Get(const K& key) const {
    std::optional<V> out;
    View(key, [&](const V& v) { out = v; });
    return out;
  }

  // Zero-copy read: `fn(const V&)` runs under the stripe's shared lock, so
  // large values aren't copied out on every read. Returns false (without
  // calling fn) when the key is absent. `fn` must not reenter this dict.
  // On a spilled stripe this pages the stripe back in (unless a checkpoint
  // is active, when the single key is answered from the blob instead).
  template <typename Fn>
  bool View(const K& key, Fn&& fn) const {
    const uint64_t h = Codec<K>::Hash(key);
    const bool spill = shards_.spill_enabled();
    const uint32_t s = shards_.ShardOf(h);
    const auto& st = shards_.stripe(s);
    for (;;) {
      {
        std::shared_lock<std::shared_mutex> lock(st.mutex);
        const bool active = shards_.checkpoint_active();
        if (active) {
          auto it = st.data.dirty.find(key);
          if (it != st.data.dirty.end()) {
            if (!it->second.has_value()) {
              return false;  // tombstoned
            }
            fn(*it->second);
            return true;
          }
        }
        if (!spill || !st.spilled.load(std::memory_order_relaxed)) {
          if (spill) {
            st.ref.store(1, std::memory_order_relaxed);
          }
          auto it = st.data.main.find(key);
          if (it == st.data.main.end()) {
            return false;
          }
          fn(it->second);
          return true;
        }
        st.ref.store(1, std::memory_order_relaxed);
        auto cit = st.data.cold.find(key);
        if (cit != st.data.cold.end()) {
          if (!cit->second.has_value()) {
            return false;  // erased since the spill
          }
          fn(*cit->second);
          return true;
        }
        if (active) {
          // The blob is part of the frozen snapshot — no fault-in until
          // EndCheckpoint. Answer this key from disk under the shared lock.
          shards_.NoteColdLookup();
          std::optional<V> v = LookupInBlob(s, h, key);
          if (!v.has_value()) {
            return false;
          }
          fn(*v);
          return true;
        }
      }
      // Spilled, not in any overlay, no active checkpoint: page the stripe
      // in and retry (the retry re-checks everything — another thread may
      // have faulted in, re-evicted, or begun a checkpoint meanwhile).
      FaultIn(s);
    }
  }

  bool Contains(const K& key) const {
    return View(key, [](const V&) {});
  }

  void Erase(const K& key) {
    const uint64_t h = Codec<K>::Hash(key);
    const bool spill = shards_.spill_enabled();
    auto& st = shards_.stripe(shards_.ShardOf(h));
    std::unique_lock<std::shared_mutex> lock(st.mutex);
    if (st.delta.enabled()) {
      st.delta.Touch(key);
    }
    if (shards_.checkpoint_active()) {
      st.data.dirty[key] = std::nullopt;  // tombstone
    } else if (!spill) {
      st.data.main.erase(key);
    } else {
      st.ref.store(1, std::memory_order_relaxed);
      if (st.spilled.load(std::memory_order_relaxed)) {
        // Tombstone relative to the blob; also covers "never existed".
        NoteBytes(st, PutColdAccounted(st.data, key, std::nullopt));
      } else {
        auto it = st.data.main.find(key);
        if (it != st.data.main.end()) {
          NoteBytes(st, -EntryBytes(it->first, it->second));
          st.data.main.erase(it);
        }
      }
    }
  }

  // Read-modify-write under the stripe lock; `fn` receives the current value
  // (default-constructed when absent) and returns the new one. On a spilled
  // stripe the current value may be read from the blob, and the result is
  // absorbed into the cold overlay — no rehydration.
  template <typename Fn>
  void Update(const K& key, Fn&& fn) {
    const uint64_t h = Codec<K>::Hash(key);
    const bool spill = shards_.spill_enabled();
    const uint32_t s = shards_.ShardOf(h);
    auto& st = shards_.stripe(s);
    {
      std::unique_lock<std::shared_mutex> lock(st.mutex);
      const bool active = shards_.checkpoint_active();
      if (st.delta.enabled()) {
        st.delta.Touch(key);
      }
      MapShard& sh = st.data;
      const bool spilled = spill && st.spilled.load(std::memory_order_relaxed);
      if (spill) {
        st.ref.store(1, std::memory_order_relaxed);
      }
      V current{};
      if (active) {
        if (auto it = sh.dirty.find(key); it != sh.dirty.end()) {
          if (it->second.has_value()) {
            current = *it->second;
          }
        } else if (spilled) {
          if (auto cit = sh.cold.find(key); cit != sh.cold.end()) {
            if (cit->second.has_value()) {
              current = *cit->second;
            }
          } else {
            shards_.NoteColdLookup();
            if (auto v = LookupInBlob(s, h, key)) {
              current = std::move(*v);
            }
          }
        } else if (auto mit = sh.main.find(key); mit != sh.main.end()) {
          current = mit->second;
        }
        sh.dirty[key] = fn(std::move(current));
      } else if (spilled) {
        if (auto cit = sh.cold.find(key); cit != sh.cold.end()) {
          if (cit->second.has_value()) {
            current = *cit->second;
          }
        } else {
          shards_.NoteColdLookup();
          if (auto v = LookupInBlob(s, h, key)) {
            current = std::move(*v);
          }
        }
        V next = fn(std::move(current));
        NoteBytes(st, PutColdAccounted(sh, key,
                                       std::optional<V>(std::move(next))));
      } else {
        if (auto it = sh.main.find(key); it != sh.main.end()) {
          current = it->second;
        }
        V next = fn(std::move(current));
        if (spill) {
          NoteBytes(st, PutMainAccounted(sh, key, next));
        } else {
          sh.main[key] = std::move(next);
        }
      }
    }
    if (spill) {
      MaybeEvict(s);
    }
  }

  // Visits the logically current contents (main overlaid with dirty, spilled
  // stripes streamed from their blobs), one stripe locked at a time. `fn`
  // must not reenter this dict.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const bool spill = shards_.spill_enabled();
    for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
      const auto& st = shards_.stripe(s);
      std::shared_lock<std::shared_mutex> lock(st.mutex);
      const bool active = shards_.checkpoint_active();
      const MapShard& sh = st.data;
      for (const auto& [k, v] : sh.main) {
        if (active && sh.dirty.count(k) > 0) {
          continue;  // overridden or tombstoned; visited via dirty below
        }
        fn(k, v);
      }
      if (spill && st.spilled.load(std::memory_order_relaxed)) {
        WalkBlob(s, [&](K&& k, V&& v) {
          if (active && sh.dirty.count(k) > 0) {
            return;
          }
          if (sh.cold.count(k) > 0) {
            return;  // superseded since the spill; visited via cold below
          }
          fn(k, v);
        });
        for (const auto& [k, ov] : sh.cold) {
          if (!ov.has_value() || (active && sh.dirty.count(k) > 0)) {
            continue;
          }
          fn(k, *ov);
        }
      }
      if (active) {
        for (const auto& [k, v] : sh.dirty) {
          if (v.has_value()) {
            fn(k, *v);
          }
        }
      }
    }
  }

  uint64_t Size() const {
    if (shards_.spill_enabled()) {
      // Spilled stripes only know their exact count after merging blob and
      // overlays; reuse the ForEach merge (O(state), reads spilled blobs).
      uint64_t n = 0;
      ForEach([&](const K&, const V&) { ++n; });
      return n;
    }
    uint64_t n = 0;
    shards_.ReadEach([&](const MapShard& sh, bool active) {
      n += sh.main.size();
      if (active) {
        for (const auto& [k, v] : sh.dirty) {
          bool in_main = sh.main.count(k) > 0;
          if (v.has_value() && !in_main) {
            ++n;
          } else if (!v.has_value() && in_main) {
            --n;
          }
        }
      }
    });
    return n;
  }

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "KeyedDict"; }

  // Resident footprint only — spilled blobs live on disk and are reported
  // via GetSpillStats().spilled_bytes.
  size_t SizeBytes() const override {
    size_t total = 0;
    shards_.ReadEach([&](const MapShard& sh, bool) {
      for (const auto& [k, v] : sh.main) {
        total += DeepSize(k) + DeepSize(v) + 16;
      }
      for (const auto& [k, v] : sh.dirty) {
        total += DeepSize(k) + (v.has_value() ? DeepSize(*v) : 0) + 24;
      }
      for (const auto& [k, v] : sh.cold) {
        total += DeepSize(k) + (v.has_value() ? DeepSize(*v) : 0) + 24;
      }
    });
    return total;
  }

  uint64_t EntryCount() const override { return Size(); }

  void BeginCheckpoint() override { shards_.BeginCheckpoint("KeyedDict"); }

  void SerializeRecords(const RecordSink& sink) const override {
    // Round-robin across the stripes' maps instead of stripe-by-stripe:
    // stripe assignment is hash-random, so an interleaved walk visits nodes
    // in near allocation order — one pass of mostly-sequential heap reads
    // instead of num_shards scattered passes (~4x faster cold). Record order
    // is free to change: records are hash-keyed and order-independent.
    // Spilled stripes have empty mains; their blobs are streamed afterwards.
    auto all = shards_.SerializeLockAll();
    const uint32_t n = shards_.num_shards();
    std::vector<typename std::unordered_map<K, V>::const_iterator> it(n);
    std::vector<typename std::unordered_map<K, V>::const_iterator> end(n);
    for (uint32_t s = 0; s < n; ++s) {
      it[s] = shards_.stripe(s).data.main.begin();
      end[s] = shards_.stripe(s).data.main.end();
    }
    BinaryWriter w;
    bool progress = true;
    while (progress) {
      progress = false;
      for (uint32_t s = 0; s < n; ++s) {
        if (it[s] == end[s]) {
          continue;
        }
        if (auto next = std::next(it[s]); next != end[s]) {
          PrefetchRecord(next);  // one rotation of lead time per stripe
        }
        const auto& [k, v] = *it[s];
        w.Clear();
        Codec<K>::Encode(w, k);
        Codec<V>::Encode(w, v);
        sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size());
        ++it[s];
        progress = true;
      }
    }
    if (shards_.spill_enabled()) {
      for (uint32_t s = 0; s < n; ++s) {
        if (shards_.stripe(s).spilled.load(std::memory_order_relaxed)) {
          EmitSpilledStripe(s, sink);
        }
      }
    }
  }

  uint32_t SerializeShardCount() const override {
    return shards_.num_shards();
  }

  void SerializeShardRecords(uint32_t shard,
                             const RecordSink& sink) const override {
    // While a checkpoint is active main is frozen, so iterate without the
    // lock (this is the "asynchronously to the processing" part of §5).
    // Otherwise hold the stripe's shared lock for the duration. A spilled
    // stripe is stable either way: eviction/fault-in are disabled while a
    // checkpoint is active and need the exclusive lock otherwise.
    auto lock = shards_.SerializeLock(shard);
    const auto& st = shards_.stripe(shard);
    if (st.spilled.load(std::memory_order_relaxed)) {
      EmitSpilledStripe(shard, sink);
      return;
    }
    BinaryWriter w;
    for (const auto& [k, v] : st.data.main) {
      w.Clear();
      Codec<K>::Encode(w, k);
      Codec<V>::Encode(w, v);
      sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size());
    }
  }

  uint64_t EndCheckpoint() override {
    const bool spill = shards_.spill_enabled();
    uint64_t total = shards_.EndCheckpoint(
        "KeyedDict", [&](uint32_t s, MapShard& sh) {
          auto& st = shards_.stripe(s);
          const bool spilled =
              spill && st.spilled.load(std::memory_order_relaxed);
          uint64_t consolidated = sh.dirty.size();
          int64_t bytes = 0;
          for (auto& [k, v] : sh.dirty) {
            if (spilled) {
              // Fold into the cold overlay, not main: the stripe keeps its
              // blob and stays spilled across checkpoints.
              bytes += PutColdAccounted(sh, k, std::move(v));
            } else if (v.has_value()) {
              if (spill) {
                bytes += PutMainAccounted(sh, k, *v);
              } else {
                sh.main[k] = std::move(*v);
              }
            } else {
              if (spill) {
                auto it = sh.main.find(k);
                if (it != sh.main.end()) {
                  bytes -= EntryBytes(it->first, it->second);
                  sh.main.erase(it);
                }
              } else {
                sh.main.erase(k);
              }
            }
          }
          sh.dirty.clear();
          if (spill) {
            NoteBytes(st, bytes);
          }
          return consolidated;
        });
    if (spill) {
      // Folding the overlay may have pushed a stripe (or its cold map) over
      // the budget; evictions were paused for the whole checkpoint.
      MaybeEvict(ShardedState<MapShard>::kNoVictim);
    }
    return total;
  }

  bool checkpoint_active() const override { return shards_.checkpoint_active(); }

  // --- Delta epochs ----------------------------------------------------------

  void EnableDeltaTracking() override { shards_.EnableDeltaTracking(); }

  bool DeltaReady() const override { return shards_.DeltaReady(); }

  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override {
    for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
      SerializeShardDirtyRecords(s, sink);
    }
  }

  void SerializeShardDirtyRecords(uint32_t shard,
                                  const DeltaRecordSink& sink) const override {
    // Same concurrency contract as SerializeShardRecords: main and the frozen
    // change set are immutable while a checkpoint is active.
    auto lock = shards_.SerializeLock(shard);
    const auto& stripe = shards_.stripe(shard);
    BinaryWriter w;
    if (!stripe.spilled.load(std::memory_order_relaxed)) {
      for (const K& k : stripe.delta.frozen()) {
        auto it = stripe.data.main.find(k);
        w.Clear();
        Codec<K>::Encode(w, k);
        if (it == stripe.data.main.end()) {
          // Erased since the previous epoch: tombstone, payload = key only.
          sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
               /*tombstone=*/true);
        } else {
          Codec<V>::Encode(w, it->second);
          sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
               /*tombstone=*/false);
        }
      }
      return;
    }
    // Spilled stripe: a frozen key's current value lives in the cold overlay
    // if it was touched after the spill, else in the blob (touched before the
    // spill, then evicted). Found nowhere = erased since the previous epoch.
    const MapShard& sh = stripe.data;
    std::unordered_map<K, bool> pending;  // frozen keys to find in the blob
    for (const K& k : stripe.delta.frozen()) {
      auto cit = sh.cold.find(k);
      if (cit != sh.cold.end()) {
        w.Clear();
        Codec<K>::Encode(w, k);
        if (cit->second.has_value()) {
          Codec<V>::Encode(w, *cit->second);
          sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
               /*tombstone=*/false);
        } else {
          sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
               /*tombstone=*/true);
        }
      } else {
        pending.emplace(k, false);
      }
    }
    if (pending.empty()) {
      return;
    }
    WalkBlobRaw(shard, [&](uint64_t key_hash, const K& k,
                           const uint8_t* payload, size_t size) {
      auto it = pending.find(k);
      if (it != pending.end() && !it->second) {
        sink(key_hash, payload, size, /*tombstone=*/false);
        it->second = true;
      }
    });
    for (const auto& [k, emitted] : pending) {
      if (!emitted) {
        w.Clear();
        Codec<K>::Encode(w, k);
        sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
             /*tombstone=*/true);
      }
    }
  }

  void ResolveEpoch(bool committed) override { shards_.ResolveEpoch(committed); }

  void Clear() override {
    const bool spill = shards_.spill_enabled();
    shards_.ClearAll([&](uint32_t s, MapShard& sh) {
      // Swap-with-empty so the heap actually shrinks (Clear is the "drop this
      // partition" path in the elastic runtime).
      std::unordered_map<K, V>().swap(sh.main);
      std::unordered_map<K, std::optional<V>>().swap(sh.dirty);
      std::unordered_map<K, std::optional<V>>().swap(sh.cold);
      if (spill) {
        auto& st = shards_.stripe(s);
        shards_.NoteResidentBytes(-st.resident_bytes);
        st.resident_bytes = 0;
        if (st.spilled.load(std::memory_order_relaxed)) {
          RemoveSpillFile(shards_.SpillPath(s));
          shards_.NoteStripeResident(st);
        }
      }
    });
  }

  Status RestoreRecord(const uint8_t* payload, size_t size) override {
    BinaryReader r(payload, size);
    SDG_ASSIGN_OR_RETURN(K key, Codec<K>::Decode(r));
    SDG_ASSIGN_OR_RETURN(V value, Codec<V>::Decode(r));
    const uint64_t h = Codec<K>::Hash(key);
    const bool spill = shards_.spill_enabled();
    const uint32_t s = shards_.ShardOf(h);
    {
      auto& st = shards_.stripe(s);
      std::unique_lock<std::shared_mutex> lock(st.mutex);
      st.delta.Invalidate();
      if (!spill) {
        st.data.main[std::move(key)] = std::move(value);
      } else if (st.spilled.load(std::memory_order_relaxed)) {
        NoteBytes(st, PutColdAccounted(st.data, key,
                                       std::optional<V>(std::move(value))));
      } else {
        NoteBytes(st, PutMainAccounted(st.data, key, value));
      }
    }
    if (spill) {
      // A larger-than-budget restore (recovery, migration ingest) spills as
      // it loads instead of blowing past the budget.
      MaybeEvict(s);
    }
    return Status::Ok();
  }

  Status RestoreErase(const uint8_t* payload, size_t size) override {
    BinaryReader r(payload, size);
    SDG_ASSIGN_OR_RETURN(K key, Codec<K>::Decode(r));
    const bool spill = shards_.spill_enabled();
    auto& st = shards_.stripe(shards_.ShardOf(Codec<K>::Hash(key)));
    std::unique_lock<std::shared_mutex> lock(st.mutex);
    st.delta.Invalidate();
    if (!spill) {
      st.data.main.erase(key);  // absent is fine: base may predate it
    } else if (st.spilled.load(std::memory_order_relaxed)) {
      NoteBytes(st, PutColdAccounted(st.data, key, std::nullopt));
    } else {
      auto it = st.data.main.find(key);
      if (it != st.data.main.end()) {
        NoteBytes(st, -EntryBytes(it->first, it->second));
        st.data.main.erase(it);
      }
    }
    return Status::Ok();
  }

  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override {
    return shards_.WriteAll([&](bool active) -> Status {
      if (active) {
        return FailedPreconditionError(
            "cannot repartition KeyedDict during an active checkpoint");
      }
      const bool spill = shards_.spill_enabled();
      BinaryWriter w;
      for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
        auto& stripe = shards_.stripe(s);
        if (spill && stripe.spilled.load(std::memory_order_relaxed)) {
          SDG_RETURN_IF_ERROR(
              ExtractFromSpilledStripe(s, part, num_parts, sink));
          stripe.delta.Invalidate();
          continue;
        }
        for (auto it = stripe.data.main.begin();
             it != stripe.data.main.end();) {
          uint64_t h = Codec<K>::Hash(it->first);
          if (h % num_parts == part) {
            w.Clear();
            Codec<K>::Encode(w, it->first);
            Codec<V>::Encode(w, it->second);
            sink(h, w.buffer().data(), w.buffer().size());
            if (spill) {
              NoteBytes(stripe, -EntryBytes(it->first, it->second));
            }
            it = stripe.data.main.erase(it);
          } else {
            ++it;
          }
        }
        stripe.delta.Invalidate();
      }
      return Status::Ok();
    });
  }

  void ExclusiveBarrier(const std::function<void()>& fn) override {
    shards_.WriteAll([&](bool) { fn(); });
  }

  // --- Cold-tier spill -------------------------------------------------------

  Status ConfigureSpill(const SpillConfig& config) override {
    Status status = shards_.WriteAll([&](bool active) -> Status {
      if (active) {
        return FailedPreconditionError(
            "cannot enable spill during an active checkpoint");
      }
      if (shards_.spill_enabled()) {
        return FailedPreconditionError("spill already configured");
      }
      SDG_RETURN_IF_ERROR(shards_.EnableSpill(config));
      int64_t total = 0;
      for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
        auto& st = shards_.stripe(s);
        st.resident_bytes = ShardResidentBytes(st.data);
        total += st.resident_bytes;
      }
      shards_.NoteResidentBytes(total);
      return Status::Ok();
    });
    if (status.ok()) {
      MaybeEvict(ShardedState<MapShard>::kNoVictim);
    }
    return status;
  }

  SpillStats GetSpillStats() const override { return shards_.GetSpillStats(); }

  // Approximate number of dirty entries (for tests and metrics).
  uint64_t DirtySize() const {
    uint64_t n = 0;
    shards_.ReadEach([&](const MapShard& sh, bool) { n += sh.dirty.size(); });
    return n;
  }

  // Entries the next delta epoch would cover (for tests and metrics).
  uint64_t DeltaChangedCount() const { return shards_.DeltaChangedCount(); }

 private:
  // One stripe's slice of the dictionary: main entries, the checkpoint
  // overlay, and the cold overlay of a spilled stripe (both use nullopt as a
  // tombstone). `cold` is non-empty only while the stripe is spilled.
  struct MapShard {
    using DeltaId = K;
    std::unordered_map<K, V> main;
    std::unordered_map<K, std::optional<V>> dirty;
    std::unordered_map<K, std::optional<V>> cold;
  };
  using Stripe = typename ShardedState<MapShard>::Stripe;

  // Memory accounting that sees through the common value types.
  template <typename T>
  static size_t DeepSize(const T& v) {
    if constexpr (std::is_same_v<T, std::string>) {
      return sizeof(T) + v.size();
    } else if constexpr (std::is_same_v<T, std::vector<double>> ||
                         std::is_same_v<T, std::vector<int64_t>>) {
      return sizeof(T) + v.size() * sizeof(typename T::value_type);
    } else {
      return sizeof(T);
    }
  }

  static int64_t EntryBytes(const K& k, const V& v) {
    return static_cast<int64_t>(DeepSize(k) + DeepSize(v) + 16);
  }
  static int64_t ColdEntryBytes(const K& k, const std::optional<V>& v) {
    return static_cast<int64_t>(DeepSize(k) +
                                (v.has_value() ? DeepSize(*v) : 0) + 24);
  }

  static int64_t ShardResidentBytes(const MapShard& sh) {
    int64_t total = 0;
    for (const auto& [k, v] : sh.main) {
      total += EntryBytes(k, v);
    }
    for (const auto& [k, v] : sh.cold) {
      total += ColdEntryBytes(k, v);
    }
    return total;
  }

  // Accounted single-lookup upserts; return the resident-byte delta.
  static int64_t PutMainAccounted(MapShard& sh, const K& key, V& value) {
    auto [it, inserted] = sh.main.try_emplace(key, std::move(value));
    if (inserted) {
      return EntryBytes(it->first, it->second);
    }
    int64_t delta = -static_cast<int64_t>(DeepSize(it->second));
    it->second = std::move(value);
    return delta + static_cast<int64_t>(DeepSize(it->second));
  }
  static int64_t PutColdAccounted(MapShard& sh, const K& key,
                                  std::optional<V> value) {
    auto [it, inserted] = sh.cold.try_emplace(key, std::move(value));
    if (inserted) {
      return ColdEntryBytes(it->first, it->second);
    }
    int64_t delta = -static_cast<int64_t>(
        it->second.has_value() ? DeepSize(*it->second) : 0);
    it->second = std::move(value);
    return delta + static_cast<int64_t>(
                       it->second.has_value() ? DeepSize(*it->second) : 0);
  }

  void NoteBytes(Stripe& st, int64_t delta) const {
    if (delta == 0) {
      return;  // same-size overwrite: spare the shared gauge's atomic RMW
    }
    st.resident_bytes += delta;
    shards_.NoteResidentBytes(delta);
  }
  // ReadEach-style paths hold only shared locks and may not touch
  // resident_bytes; all mutating paths above take the exclusive lock.

  // --- Blob access (spilled stripes) ---------------------------------------
  // All callers hold the stripe lock (shared is enough: the blob only
  // changes under the exclusive lock) or run during an active checkpoint,
  // when the blob is frozen.

  // fn(key_hash, decoded key, raw payload, payload size) per blob record.
  template <typename Fn>
  void WalkBlobRaw(uint32_t s, Fn&& fn) const {
    auto blob = ReadSpillFile(shards_.SpillPath(s));
    SDG_CHECK(blob.ok()) << "spill blob unreadable: " << blob.status().ToString();
    if (blob->empty()) {
      return;
    }
    auto reader = ChunkReader::Open(*blob);
    SDG_CHECK(reader.ok()) << "spill blob corrupt: "
                           << reader.status().ToString();
    Status walk = reader->ForEach([&](const ChunkRecordView& rec) {
      BinaryReader r(rec.payload, rec.size);
      auto key = Codec<K>::Decode(r);
      SDG_CHECK(key.ok()) << "spill record key undecodable";
      fn(rec.key_hash, *key, rec.payload, rec.size);
    });
    SDG_CHECK(walk.ok()) << "spill blob walk failed: " << walk.ToString();
  }

  // fn(K&&, V&&) per blob record, fully decoded.
  template <typename Fn>
  void WalkBlob(uint32_t s, Fn&& fn) const {
    WalkBlobRaw(s, [&](uint64_t, const K& k, const uint8_t* payload,
                       size_t size) {
      BinaryReader r(payload, size);
      auto key = Codec<K>::Decode(r);
      auto value = Codec<V>::Decode(r);
      SDG_CHECK(key.ok() && value.ok()) << "spill record undecodable";
      fn(std::move(*key), std::move(*value));
    });
  }

  std::optional<V> LookupInBlob(uint32_t s, uint64_t h, const K& key) const {
    std::optional<V> out;
    WalkBlobRaw(s, [&](uint64_t key_hash, const K& k, const uint8_t* payload,
                       size_t size) {
      if (out.has_value() || key_hash != h || !(k == key)) {
        return;
      }
      BinaryReader r(payload, size);
      auto kk = Codec<K>::Decode(r);
      auto v = Codec<V>::Decode(r);
      SDG_CHECK(kk.ok() && v.ok()) << "spill record undecodable";
      out = std::move(*v);
    });
    return out;
  }

  // Streams one spilled stripe into a full-base sink without rehydration:
  // blob records not superseded by the cold overlay pass through verbatim
  // (their payloads are already in record form), then live cold entries.
  void EmitSpilledStripe(uint32_t s, const RecordSink& sink) const {
    SpillCrashPoint("spill.ckpt");
    const MapShard& sh = shards_.stripe(s).data;
    WalkBlobRaw(s, [&](uint64_t key_hash, const K& k, const uint8_t* payload,
                       size_t size) {
      if (!sh.cold.empty() && sh.cold.count(k) > 0) {
        return;  // overridden or erased since the spill
      }
      sink(key_hash, payload, size);
    });
    BinaryWriter w;
    for (const auto& [k, ov] : sh.cold) {
      if (!ov.has_value()) {
        continue;
      }
      w.Clear();
      Codec<K>::Encode(w, k);
      Codec<V>::Encode(w, *ov);
      sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size());
    }
  }

  // --- Eviction / fault-in --------------------------------------------------

  // Runs with no locks held; takes one stripe lock at a time. `exclude`
  // shields the stripe the caller just touched from immediate re-eviction.
  void MaybeEvict(uint32_t exclude) const {
    if (!shards_.spill_enabled()) {
      return;
    }
    uint32_t attempts = 0;
    while (shards_.OverBudget() && !shards_.checkpoint_active()) {
      uint32_t victim = shards_.PickSpillVictim(exclude);
      if (victim == ShardedState<MapShard>::kNoVictim ||
          ++attempts > 2 * shards_.num_shards()) {
        break;
      }
      if (!EvictStripe(victim)) {
        break;  // a checkpoint began or the spill write failed
      }
    }
    // Still over budget with every evictable stripe already cold: the
    // pressure is in cold overlays. Compact them back into their blobs.
    if (shards_.OverBudget() && !shards_.checkpoint_active()) {
      for (uint32_t s = 0;
           s < shards_.num_shards() && shards_.OverBudget(); ++s) {
        if (s != exclude &&
            shards_.stripe(s).spilled.load(std::memory_order_relaxed)) {
          EvictStripe(s);
        }
      }
    }
  }

  // Serializes the stripe's merged view (main for a resident victim; blob +
  // cold for a compaction) into a fresh spill file, then drops the resident
  // containers. Returns false without evicting when a checkpoint is active
  // or the file write fails (state stays resident — spill is best-effort,
  // durability belongs to checkpoints).
  bool EvictStripe(uint32_t s) const {
    auto& st = shards_.stripe(s);
    std::unique_lock<std::shared_mutex> lock(st.mutex);
    if (shards_.checkpoint_active()) {
      return false;  // stable under the stripe lock
    }
    MapShard& sh = st.data;
    const bool was_spilled = st.spilled.load(std::memory_order_relaxed);
    if (was_spilled && sh.cold.empty()) {
      return false;  // nothing resident to shed
    }
    ChunkOptions options;
    options.version = kChunkVersion2;
    options.codec = shards_.spill_config().codec;
    ChunkBuilder builder("spill", options);
    if (was_spilled) {
      // Compaction: fold the cold overlay into a rewritten blob.
      WalkBlobRaw(s, [&](uint64_t key_hash, const K& k,
                         const uint8_t* payload, size_t size) {
        if (sh.cold.count(k) > 0) {
          return;
        }
        builder.AddRecord(key_hash, payload, size);
      });
    }
    BinaryWriter w;
    for (const auto& [k, v] : sh.main) {  // empty when was_spilled
      w.Clear();
      Codec<K>::Encode(w, k);
      Codec<V>::Encode(w, v);
      builder.AddRecord(Codec<K>::Hash(k), w.buffer().data(),
                        w.buffer().size());
    }
    for (const auto& [k, ov] : sh.cold) {
      if (!ov.has_value()) {
        continue;
      }
      w.Clear();
      Codec<K>::Encode(w, k);
      Codec<V>::Encode(w, *ov);
      builder.AddRecord(Codec<K>::Hash(k), w.buffer().data(),
                        w.buffer().size());
    }
    const uint64_t records = builder.record_count();
    std::vector<uint8_t> blob = std::move(builder).Finish();
    if (records > 0) {
      Status written = WriteSpillFileAtomic(shards_.SpillPath(s), blob);
      if (!written.ok()) {
        return false;
      }
    } else {
      RemoveSpillFile(shards_.SpillPath(s));
      blob.clear();
    }
    SpillCrashPoint("spill.evict");
    std::unordered_map<K, V>().swap(sh.main);
    std::unordered_map<K, std::optional<V>>().swap(sh.cold);
    shards_.NoteResidentBytes(-st.resident_bytes);
    st.resident_bytes = 0;
    if (was_spilled) {
      shards_.NoteBlobRewritten(st, records, blob.size());
    } else {
      shards_.NoteStripeSpilled(st, records, blob.size());
    }
    shards_.NoteEviction();
    return true;
  }

  // Pages a spilled stripe back in under its exclusive lock: merge blob
  // records under the cold overlay, fold live cold entries, drop the file.
  // A no-op if the stripe was faulted in by someone else meanwhile, or if a
  // checkpoint began (the caller's retry loop then reads from the blob).
  void FaultIn(uint32_t s) const {
    {
      auto& st = shards_.stripe(s);
      std::unique_lock<std::shared_mutex> lock(st.mutex);
      if (!st.spilled.load(std::memory_order_relaxed) ||
          shards_.checkpoint_active()) {
        return;
      }
      MapShard& sh = st.data;
      WalkBlob(s, [&](K&& k, V&& v) {
        if (sh.cold.count(k) > 0) {
          return;  // superseded after the spill
        }
        sh.main.emplace(std::move(k), std::move(v));
      });
      for (auto& [k, ov] : sh.cold) {
        if (ov.has_value()) {
          sh.main[k] = std::move(*ov);
        }
      }
      std::unordered_map<K, std::optional<V>>().swap(sh.cold);
      const int64_t fresh = ShardResidentBytes(sh);
      shards_.NoteResidentBytes(fresh - st.resident_bytes);
      st.resident_bytes = fresh;
      shards_.NoteStripeResident(st);
      shards_.NoteFaultIn();
      st.ref.store(1, std::memory_order_relaxed);
      SpillCrashPoint("spill.faultin");
      RemoveSpillFile(shards_.SpillPath(s));
    }
    // Paging one stripe in can evict another; never this one (exclude).
    MaybeEvict(s);
  }

  // Spilled-stripe half of ExtractPartition: runs under the all-stripe
  // guard. Streams the partition's records out of the merged blob+cold view
  // and rewrites the blob without them — the stripe stays on disk.
  Status ExtractFromSpilledStripe(uint32_t s, uint32_t part,
                                  uint32_t num_parts, const RecordSink& sink) {
    auto& st = shards_.stripe(s);
    MapShard& sh = st.data;
    ChunkOptions options;
    options.version = kChunkVersion2;
    options.codec = shards_.spill_config().codec;
    ChunkBuilder keep("spill", options);
    WalkBlobRaw(s, [&](uint64_t key_hash, const K& k, const uint8_t* payload,
                       size_t size) {
      if (sh.cold.count(k) > 0) {
        return;  // cold decides this key's fate below
      }
      if (key_hash % num_parts == part) {
        sink(key_hash, payload, size);
      } else {
        keep.AddRecord(key_hash, payload, size);
      }
    });
    BinaryWriter w;
    for (const auto& [k, ov] : sh.cold) {
      if (!ov.has_value()) {
        continue;  // erased either way; extracted partitions get no record
      }
      uint64_t h = Codec<K>::Hash(k);
      w.Clear();
      Codec<K>::Encode(w, k);
      Codec<V>::Encode(w, *ov);
      if (h % num_parts == part) {
        sink(h, w.buffer().data(), w.buffer().size());
      } else {
        keep.AddRecord(h, w.buffer().data(), w.buffer().size());
      }
    }
    const uint64_t records = keep.record_count();
    std::vector<uint8_t> blob = std::move(keep).Finish();
    if (records > 0) {
      SDG_RETURN_IF_ERROR(WriteSpillFileAtomic(shards_.SpillPath(s), blob));
    } else {
      RemoveSpillFile(shards_.SpillPath(s));
      blob.clear();
    }
    std::unordered_map<K, std::optional<V>>().swap(sh.cold);
    shards_.NoteResidentBytes(-st.resident_bytes);
    st.resident_bytes = 0;
    shards_.NoteBlobRewritten(st, records, blob.size());
    return Status::Ok();
  }

  // Mutable: fault-in and eviction mutate stripes from logically-const reads
  // (View on a spilled stripe pages it back in).
  mutable ShardedState<MapShard> shards_;
};

}  // namespace sdg::state

#endif  // SDG_STATE_KEYED_DICT_H_
