// KeyedDict<K, V>: the hash-partitionable dictionary SE.
//
// This is the state structure behind the paper's key/value store application
// (§6.1) and the word-count state. It implements the full dirty-state
// protocol: while a checkpoint is active, writes land in an overlay map
// (erases become tombstones), reads consult the overlay first, and
// EndCheckpoint folds the overlay back under a short lock — the paper's claim
// that "the locking overhead reduces proportionally to the state update
// rate" (§6.4) falls out of the overlay size.
//
// The dictionary is hash-striped over ShardedState: every entry lives in the
// stripe its partitioning hash selects, single-key operations take only that
// stripe's shared_mutex, and checkpoint serialisation walks stripes
// independently (SerializeShardRecords) so the driver can fan it across a
// thread pool.
#ifndef SDG_STATE_KEYED_DICT_H_
#define SDG_STATE_KEYED_DICT_H_

#include <iterator>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/state/codec.h"
#include "src/state/sharded_state.h"
#include "src/state/state_backend.h"

namespace sdg::state {

template <typename K, typename V>
class KeyedDict final : public StateBackend {
 public:
  explicit KeyedDict(uint32_t num_shards = DefaultStateShards())
      : shards_(num_shards) {}

  // --- Map operations -------------------------------------------------------

  void Put(const K& key, V value) {
    shards_.Write(Codec<K>::Hash(key),
                  [&](MapShard& sh, DeltaTracker<K>& delta, bool active) {
                    if (delta.enabled()) {  // non-delta hot path pays nothing
                      delta.Touch(key);
                    }
                    if (active) {
                      sh.dirty[key] = std::move(value);
                    } else {
                      sh.main[key] = std::move(value);
                    }
                  });
  }

  std::optional<V> Get(const K& key) const {
    return shards_.Read(
        Codec<K>::Hash(key),
        [&](const MapShard& sh, bool active) -> std::optional<V> {
          if (active) {
            auto it = sh.dirty.find(key);
            if (it != sh.dirty.end()) {
              return it->second;  // nullopt if tombstoned
            }
          }
          auto it = sh.main.find(key);
          if (it == sh.main.end()) {
            return std::nullopt;
          }
          return it->second;
        });
  }

  // Zero-copy read: `fn(const V&)` runs under the stripe's shared lock, so
  // large values aren't copied out on every read. Returns false (without
  // calling fn) when the key is absent. `fn` must not reenter this dict.
  template <typename Fn>
  bool View(const K& key, Fn&& fn) const {
    return shards_.Read(
        Codec<K>::Hash(key), [&](const MapShard& sh, bool active) -> bool {
          if (active) {
            auto it = sh.dirty.find(key);
            if (it != sh.dirty.end()) {
              if (!it->second.has_value()) {
                return false;  // tombstoned
              }
              fn(*it->second);
              return true;
            }
          }
          auto it = sh.main.find(key);
          if (it == sh.main.end()) {
            return false;
          }
          fn(it->second);
          return true;
        });
  }

  bool Contains(const K& key) const {
    return View(key, [](const V&) {});
  }

  void Erase(const K& key) {
    shards_.Write(Codec<K>::Hash(key),
                  [&](MapShard& sh, DeltaTracker<K>& delta, bool active) {
                    if (delta.enabled()) {
                      delta.Touch(key);
                    }
                    if (active) {
                      sh.dirty[key] = std::nullopt;  // tombstone
                    } else {
                      sh.main.erase(key);
                    }
                  });
  }

  // Read-modify-write under the stripe lock; `fn` receives the current value
  // (default-constructed when absent) and returns the new one.
  template <typename Fn>
  void Update(const K& key, Fn&& fn) {
    shards_.Write(
        Codec<K>::Hash(key),
        [&](MapShard& sh, DeltaTracker<K>& delta, bool active) {
          if (delta.enabled()) {
            delta.Touch(key);
          }
          V current{};
          if (active) {
            auto it = sh.dirty.find(key);
            if (it != sh.dirty.end()) {
              if (it->second.has_value()) {
                current = *it->second;
              }
            } else if (auto mit = sh.main.find(key); mit != sh.main.end()) {
              current = mit->second;
            }
            sh.dirty[key] = fn(std::move(current));
          } else {
            auto it = sh.main.find(key);
            if (it != sh.main.end()) {
              current = it->second;
            }
            sh.main[key] = fn(std::move(current));
          }
        });
  }

  // Visits the logically current contents (main overlaid with dirty), one
  // stripe locked at a time. `fn` must not reenter this dict.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    shards_.ReadEach([&](const MapShard& sh, bool active) {
      for (const auto& [k, v] : sh.main) {
        if (active && sh.dirty.count(k) > 0) {
          continue;  // overridden or tombstoned; visited via dirty below
        }
        fn(k, v);
      }
      if (active) {
        for (const auto& [k, v] : sh.dirty) {
          if (v.has_value()) {
            fn(k, *v);
          }
        }
      }
    });
  }

  uint64_t Size() const {
    uint64_t n = 0;
    shards_.ReadEach([&](const MapShard& sh, bool active) {
      n += sh.main.size();
      if (active) {
        for (const auto& [k, v] : sh.dirty) {
          bool in_main = sh.main.count(k) > 0;
          if (v.has_value() && !in_main) {
            ++n;
          } else if (!v.has_value() && in_main) {
            --n;
          }
        }
      }
    });
    return n;
  }

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "KeyedDict"; }

  size_t SizeBytes() const override {
    size_t total = 0;
    shards_.ReadEach([&](const MapShard& sh, bool) {
      for (const auto& [k, v] : sh.main) {
        total += DeepSize(k) + DeepSize(v) + 16;
      }
      for (const auto& [k, v] : sh.dirty) {
        total += DeepSize(k) + (v.has_value() ? DeepSize(*v) : 0) + 24;
      }
    });
    return total;
  }

  uint64_t EntryCount() const override { return Size(); }

  void BeginCheckpoint() override { shards_.BeginCheckpoint("KeyedDict"); }

  void SerializeRecords(const RecordSink& sink) const override {
    // Round-robin across the stripes' maps instead of stripe-by-stripe:
    // stripe assignment is hash-random, so an interleaved walk visits nodes
    // in near allocation order — one pass of mostly-sequential heap reads
    // instead of num_shards scattered passes (~4x faster cold). Record order
    // is free to change: records are hash-keyed and order-independent.
    auto all = shards_.SerializeLockAll();
    const uint32_t n = shards_.num_shards();
    std::vector<typename std::unordered_map<K, V>::const_iterator> it(n);
    std::vector<typename std::unordered_map<K, V>::const_iterator> end(n);
    for (uint32_t s = 0; s < n; ++s) {
      it[s] = shards_.stripe(s).data.main.begin();
      end[s] = shards_.stripe(s).data.main.end();
    }
    BinaryWriter w;
    bool progress = true;
    while (progress) {
      progress = false;
      for (uint32_t s = 0; s < n; ++s) {
        if (it[s] == end[s]) {
          continue;
        }
        if (auto next = std::next(it[s]); next != end[s]) {
          PrefetchRecord(next);  // one rotation of lead time per stripe
        }
        const auto& [k, v] = *it[s];
        w.Clear();
        Codec<K>::Encode(w, k);
        Codec<V>::Encode(w, v);
        sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size());
        ++it[s];
        progress = true;
      }
    }
  }

  uint32_t SerializeShardCount() const override {
    return shards_.num_shards();
  }

  void SerializeShardRecords(uint32_t shard,
                             const RecordSink& sink) const override {
    // While a checkpoint is active main is frozen, so iterate without the
    // lock (this is the "asynchronously to the processing" part of §5).
    // Otherwise hold the stripe's shared lock for the duration.
    auto lock = shards_.SerializeLock(shard);
    BinaryWriter w;
    for (const auto& [k, v] : shards_.stripe(shard).data.main) {
      w.Clear();
      Codec<K>::Encode(w, k);
      Codec<V>::Encode(w, v);
      sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size());
    }
  }

  uint64_t EndCheckpoint() override {
    return shards_.EndCheckpoint("KeyedDict", [](uint32_t, MapShard& sh) {
      uint64_t consolidated = sh.dirty.size();
      for (auto& [k, v] : sh.dirty) {
        if (v.has_value()) {
          sh.main[k] = std::move(*v);
        } else {
          sh.main.erase(k);
        }
      }
      sh.dirty.clear();
      return consolidated;
    });
  }

  bool checkpoint_active() const override { return shards_.checkpoint_active(); }

  // --- Delta epochs ----------------------------------------------------------

  void EnableDeltaTracking() override { shards_.EnableDeltaTracking(); }

  bool DeltaReady() const override { return shards_.DeltaReady(); }

  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override {
    for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
      SerializeShardDirtyRecords(s, sink);
    }
  }

  void SerializeShardDirtyRecords(uint32_t shard,
                                  const DeltaRecordSink& sink) const override {
    // Same concurrency contract as SerializeShardRecords: main and the frozen
    // change set are immutable while a checkpoint is active.
    auto lock = shards_.SerializeLock(shard);
    const auto& stripe = shards_.stripe(shard);
    BinaryWriter w;
    for (const K& k : stripe.delta.frozen()) {
      auto it = stripe.data.main.find(k);
      w.Clear();
      Codec<K>::Encode(w, k);
      if (it == stripe.data.main.end()) {
        // Erased since the previous epoch: tombstone, payload = key only.
        sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
             /*tombstone=*/true);
      } else {
        Codec<V>::Encode(w, it->second);
        sink(Codec<K>::Hash(k), w.buffer().data(), w.buffer().size(),
             /*tombstone=*/false);
      }
    }
  }

  void ResolveEpoch(bool committed) override { shards_.ResolveEpoch(committed); }

  void Clear() override {
    shards_.ClearAll([](uint32_t, MapShard& sh) {
      sh.main.clear();
      sh.dirty.clear();
    });
  }

  Status RestoreRecord(const uint8_t* payload, size_t size) override {
    BinaryReader r(payload, size);
    SDG_ASSIGN_OR_RETURN(K key, Codec<K>::Decode(r));
    SDG_ASSIGN_OR_RETURN(V value, Codec<V>::Decode(r));
    shards_.Write(Codec<K>::Hash(key),
                  [&](MapShard& sh, DeltaTracker<K>& delta, bool) {
                    sh.main[std::move(key)] = std::move(value);
                    delta.Invalidate();
                  });
    return Status::Ok();
  }

  Status RestoreErase(const uint8_t* payload, size_t size) override {
    BinaryReader r(payload, size);
    SDG_ASSIGN_OR_RETURN(K key, Codec<K>::Decode(r));
    shards_.Write(Codec<K>::Hash(key),
                  [&](MapShard& sh, DeltaTracker<K>& delta, bool) {
                    sh.main.erase(key);  // absent is fine: base may predate it
                    delta.Invalidate();
                  });
    return Status::Ok();
  }

  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override {
    return shards_.WriteAll([&](bool active) -> Status {
      if (active) {
        return FailedPreconditionError(
            "cannot repartition KeyedDict during an active checkpoint");
      }
      BinaryWriter w;
      for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
        auto& stripe = shards_.stripe(s);
        for (auto it = stripe.data.main.begin();
             it != stripe.data.main.end();) {
          uint64_t h = Codec<K>::Hash(it->first);
          if (h % num_parts == part) {
            w.Clear();
            Codec<K>::Encode(w, it->first);
            Codec<V>::Encode(w, it->second);
            sink(h, w.buffer().data(), w.buffer().size());
            it = stripe.data.main.erase(it);
          } else {
            ++it;
          }
        }
        stripe.delta.Invalidate();
      }
      return Status::Ok();
    });
  }

  void ExclusiveBarrier(const std::function<void()>& fn) override {
    shards_.WriteAll([&](bool) { fn(); });
  }

  // Approximate number of dirty entries (for tests and metrics).
  uint64_t DirtySize() const {
    uint64_t n = 0;
    shards_.ReadEach([&](const MapShard& sh, bool) { n += sh.dirty.size(); });
    return n;
  }

  // Entries the next delta epoch would cover (for tests and metrics).
  uint64_t DeltaChangedCount() const { return shards_.DeltaChangedCount(); }

 private:
  // One stripe's slice of the dictionary: main entries plus the checkpoint
  // overlay (nullopt = tombstone), both keyed to this stripe by Codec hash.
  struct MapShard {
    using DeltaId = K;
    std::unordered_map<K, V> main;
    std::unordered_map<K, std::optional<V>> dirty;
  };

  // Memory accounting that sees through the common value types.
  template <typename T>
  static size_t DeepSize(const T& v) {
    if constexpr (std::is_same_v<T, std::string>) {
      return sizeof(T) + v.size();
    } else if constexpr (std::is_same_v<T, std::vector<double>> ||
                         std::is_same_v<T, std::vector<int64_t>>) {
      return sizeof(T) + v.size() * sizeof(typename T::value_type);
    } else {
      return sizeof(T);
    }
  }

  ShardedState<MapShard> shards_;
};

}  // namespace sdg::state

#endif  // SDG_STATE_KEYED_DICT_H_
