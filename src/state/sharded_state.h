// ShardedState<Shard>: the lock-striping core shared by every state backend.
//
// A backend splits its containers into N power-of-two stripes keyed by the
// same partitioning hash that travels with every checkpoint record
// (`Codec<K>::Hash` for dictionaries, `MixHash64(block)` / `MixHash64(row)`
// for the numeric backends). Each stripe owns
//   - a `std::shared_mutex` (readers share, writers exclude — the read-heavy
//     paths like @Global partial-state reads scale across cores),
//   - the backend-specific shard of the main structure and its dirty overlay
//     (the `Shard` template parameter — a plain data struct), and
//   - a `DeltaTracker` over the backend's delta granularity, so delta epochs
//     freeze and resolve shard-by-shard.
//
// The helper centralises the whole §5 dirty-state protocol — the checkpoint
// flag, Begin/End consolidation, delta epoch transitions, and the locking
// discipline — so the four backends keep only their container-specific code.
//
// Locking discipline (also documented in docs/runtime.md):
//   - single-stripe ops take that stripe's lock (shared for reads, exclusive
//     for writes); a thread holding a stripe lock never acquires another;
//   - whole-backend ops (resize, Fill, ExtractPartition, checkpoint
//     transitions) take every stripe exclusively in index order — the only
//     multi-lock pattern, so there is no deadlock cycle;
//   - `checkpoint_active_` only flips while ALL stripes are held exclusively,
//     so any thread holding any stripe lock (even shared) sees a stable flag
//     and a relaxed load inside a locked region is race-free;
//   - serialisation while a checkpoint is active takes no locks at all: the
//     main structure and the frozen delta sets are immutable until
//     EndCheckpoint/Resolve, which is what lets SerializeShardRecords run on
//     a thread pool concurrently with processing (writes go to the overlay
//     under the stripe locks).
#ifndef SDG_STATE_SHARDED_STATE_H_
#define SDG_STATE_SHARDED_STATE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/state/delta_tracker.h"
#include "src/state/spill.h"

namespace sdg::state {

// Default stripe count: a power of two sized to the machine, ~2x the
// hardware threads clamped to [4, 64] — except a single-hardware-thread
// host, which gets exactly one stripe. The BENCH_state stripe sweep
// (dict_put_hw_s{1,4,16,64}) is what this is tuned from: stripes beyond
// ~2x the writer count buy no further scaling but tax every op with extra
// lock traffic, and on a 1-core host even the old floor of 4 costs ~24%
// of single-writer put rate over one stripe (24.7M vs 18.7M items/s).
// One stripe is safe there because the executor sizes its worker pool to
// hardware_concurrency — there is exactly one processing writer — and the
// checkpoint serialize walk iterates lock-free while a checkpoint is
// active (main is frozen; writes land in the dirty overlay), so stripes
// never gate checkpoint overlap. On >=2 hardware threads the multi-writer
// regime returns and the floor of 4 stands: fewer reintroduces the
// one-lock contention striping exists to remove.
inline uint32_t DefaultStateShards() {
  static const uint32_t shards = [] {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1) {
      return uint32_t{1};
    }
    uint32_t s = 4;
    while (s < 2 * hw && s < 64) {
      s <<= 1;
    }
    return s;
  }();
  return shards;
}

// Prefetches the element an iterator points at, plus — when the mapped value
// owns out-of-line storage (std::string, etc.) — its payload. The serialize
// walks rotate across num_shards pointer-chased node streams, which is more
// than the hardware prefetcher tracks; chaining a one-ahead software
// prefetch keeps two misses in flight and roughly halves the walk's wall
// time for out-of-line values (measured on 200-byte strings).
template <typename It>
inline void PrefetchRecord(It it) {
  __builtin_prefetch(std::addressof(*it));
  if constexpr (requires { it->second.data(); }) {
    __builtin_prefetch(it->second.data());
  }
}

template <typename Shard>
class ShardedState {
 public:
  using DeltaId = typename Shard::DeltaId;

  struct Stripe {
    mutable std::shared_mutex mutex;
    Shard data;
    DeltaTracker<DeltaId> delta;

    // --- Cold tier (meaningful only when spill is enabled) ----------------
    // `spilled` flips only while this stripe's mutex is held exclusively, so
    // any thread inside a locked region sees a stable value; the relaxed
    // loads outside locks (clock scan, MaybeEvict budget probe) are hints
    // that get re-validated under the lock.
    std::atomic<bool> spilled{false};
    // Clock reference bit: set on every access, cleared by the victim scan.
    // Atomic because shared-lock readers set it concurrently.
    mutable std::atomic<uint8_t> ref{1};
    // Accounted bytes of this stripe's resident containers; read/written
    // under the stripe lock only. The backend keeps it in sync with its
    // container mutations; the atomic backend-wide gauge mirrors the sum.
    int64_t resident_bytes = 0;
    // On-disk shape of the spilled blob (under the stripe lock).
    uint64_t spilled_records = 0;
    uint64_t spilled_blob_bytes = 0;
  };

  explicit ShardedState(uint32_t num_shards = DefaultStateShards()) {
    uint32_t n = 1;
    while (n < num_shards && n < 1024) {
      n <<= 1;  // round up to a power of two so routing is a mask
    }
    num_shards_ = n;
    mask_ = n - 1;
    stripes_ = std::make_unique<Stripe[]>(n);
  }

  uint32_t num_shards() const { return num_shards_; }
  uint32_t ShardOf(uint64_t hash) const {
    return static_cast<uint32_t>(hash & mask_);
  }

  Stripe& stripe(uint32_t s) { return stripes_[s]; }
  const Stripe& stripe(uint32_t s) const { return stripes_[s]; }

  bool checkpoint_active() const {
    return checkpoint_active_.load(std::memory_order_acquire);
  }

  // --- Single-stripe access -------------------------------------------------
  // fn(Shard&, DeltaTracker<DeltaId>&, bool checkpoint_active) under the
  // owning stripe's exclusive lock.
  template <typename Fn>
  decltype(auto) Write(uint64_t hash, Fn&& fn) {
    Stripe& st = stripes_[ShardOf(hash)];
    std::unique_lock<std::shared_mutex> lock(st.mutex);
    return fn(st.data, st.delta,
              checkpoint_active_.load(std::memory_order_relaxed));
  }

  // fn(const Shard&, bool checkpoint_active) under the owning stripe's shared
  // lock.
  template <typename Fn>
  decltype(auto) Read(uint64_t hash, Fn&& fn) const {
    const Stripe& st = stripes_[ShardOf(hash)];
    std::shared_lock<std::shared_mutex> lock(st.mutex);
    return fn(st.data, checkpoint_active_.load(std::memory_order_relaxed));
  }

  // --- Sequential all-stripe visitors --------------------------------------
  // One stripe locked at a time: shard-locally consistent, no global cut.
  // fn(const Shard&, bool checkpoint_active) per stripe.
  template <typename Fn>
  void ReadEach(Fn&& fn) const {
    for (uint32_t s = 0; s < num_shards_; ++s) {
      const Stripe& st = stripes_[s];
      std::shared_lock<std::shared_mutex> lock(st.mutex);
      fn(st.data, checkpoint_active_.load(std::memory_order_relaxed));
    }
  }

  // Whole-backend mutation: `fn(bool checkpoint_active)` runs once with every
  // stripe held exclusively; the body may touch any stripe via stripe(s).
  // The flag is sampled under the guard, so active-checkpoint precondition
  // checks made inside fn are race-free.
  template <typename Fn>
  decltype(auto) WriteAll(Fn&& fn) {
    AllWriteGuard guard(*this);
    return fn(checkpoint_active_.load(std::memory_order_relaxed));
  }

  // Whole-backend read: `fn(bool checkpoint_active)` with every stripe held
  // shared — a consistent cut for cross-stripe reads (ToDense, Multiply).
  template <typename Fn>
  decltype(auto) ReadAll(Fn&& fn) const {
    AllReadGuard guard(*this);
    return fn(checkpoint_active_.load(std::memory_order_relaxed));
  }

  // --- Whole-backend guards -------------------------------------------------
  // Every stripe locked simultaneously, acquired in index order.
  class AllWriteGuard {
   public:
    explicit AllWriteGuard(ShardedState& owner) : owner_(owner) {
      for (uint32_t s = 0; s < owner_.num_shards_; ++s) {
        owner_.stripes_[s].mutex.lock();
      }
    }
    ~AllWriteGuard() {
      for (uint32_t s = owner_.num_shards_; s > 0; --s) {
        owner_.stripes_[s - 1].mutex.unlock();
      }
    }
    AllWriteGuard(const AllWriteGuard&) = delete;
    AllWriteGuard& operator=(const AllWriteGuard&) = delete;

   private:
    ShardedState& owner_;
  };

  class AllReadGuard {
   public:
    explicit AllReadGuard(const ShardedState& owner) : owner_(owner) {
      for (uint32_t s = 0; s < owner_.num_shards_; ++s) {
        owner_.stripes_[s].mutex.lock_shared();
      }
    }
    ~AllReadGuard() {
      for (uint32_t s = owner_.num_shards_; s > 0; --s) {
        owner_.stripes_[s - 1].mutex.unlock_shared();
      }
    }
    AllReadGuard(const AllReadGuard&) = delete;
    AllReadGuard& operator=(const AllReadGuard&) = delete;

   private:
    const ShardedState& owner_;
  };

  // --- Checkpoint protocol (§5) --------------------------------------------
  // All stripes held exclusively: the snapshot is an atomic cut, exactly the
  // semantics the single-mutex backends had.
  void BeginCheckpoint(const char* type_name) {
    AllWriteGuard guard(*this);
    SDG_CHECK(!checkpoint_active_.load(std::memory_order_relaxed))
        << "checkpoint already active on " << type_name;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      stripes_[s].delta.Freeze();
    }
    checkpoint_active_.store(true, std::memory_order_release);
  }

  // fn(uint32_t stripe, Shard&) folds that stripe's overlay into its main
  // structure and returns the number of entries consolidated.
  template <typename Fn>
  uint64_t EndCheckpoint(const char* type_name, Fn&& consolidate) {
    AllWriteGuard guard(*this);
    SDG_CHECK(checkpoint_active_.load(std::memory_order_relaxed))
        << "EndCheckpoint without BeginCheckpoint on " << type_name;
    uint64_t total = 0;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      total += consolidate(s, stripes_[s].data);
    }
    checkpoint_active_.store(false, std::memory_order_release);
    return total;
  }

  // Serialise-time lock for one stripe: none while a checkpoint is active
  // (main and the frozen delta set are immutable — and taking even a shared
  // lock would contend with overlay writers), shared otherwise.
  std::shared_lock<std::shared_mutex> SerializeLock(uint32_t s) const {
    if (checkpoint_active()) {
      return std::shared_lock<std::shared_mutex>(stripes_[s].mutex,
                                                 std::defer_lock);
    }
    return std::shared_lock<std::shared_mutex>(stripes_[s].mutex);
  }

  // Serialise-time lock for a whole-backend walk (e.g. an interleaved
  // cross-stripe iteration): every stripe shared while quiesced, nothing
  // while a checkpoint is active — holding stripe locks across the full walk
  // would stall overlay writers and break the async-checkpoint contract.
  class SerializeAllLock {
   public:
    explicit SerializeAllLock(const ShardedState& owner) {
      if (!owner.checkpoint_active()) {
        guard_.emplace(owner);
      }
    }

   private:
    std::optional<AllReadGuard> guard_;
  };

  SerializeAllLock SerializeLockAll() const { return SerializeAllLock(*this); }

  // --- Delta epochs ---------------------------------------------------------
  void EnableDeltaTracking() {
    AllWriteGuard guard(*this);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      stripes_[s].delta.Enable();
    }
  }

  // Stripe trackers transition in lockstep under the all-stripe guard except
  // for restore/repartition invalidation, which is per-stripe — so the
  // backend is delta-ready only when every stripe still has its baseline.
  bool DeltaReady() const {
    AllReadGuard guard(*this);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (!stripes_[s].delta.Ready()) {
        return false;
      }
    }
    return num_shards_ > 0;
  }

  void ResolveEpoch(bool committed) {
    AllWriteGuard guard(*this);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      stripes_[s].delta.Resolve(committed);
    }
  }

  // fn(uint32_t stripe, Shard&) clears that stripe's containers. Also
  // invalidates every delta tracker. Leaves the checkpoint flag untouched
  // (matching the historical Clear semantics).
  template <typename Fn>
  void ClearAll(Fn&& clear) {
    AllWriteGuard guard(*this);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      clear(s, stripes_[s].data);
      stripes_[s].delta.Invalidate();
    }
  }

  size_t DeltaChangedCount() const {
    AllReadGuard guard(*this);
    size_t n = 0;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      n += stripes_[s].delta.ChangedCount();
    }
    return n;
  }

  // --- Cold-tier spill orchestration ---------------------------------------
  // ShardedState owns the policy half — budget, clock victim selection, the
  // resident gauge, stats — while the backend owns the data half (what a
  // stripe's bytes look like on disk). The backend calls TouchRef on every
  // access, keeps stripe.resident_bytes + the gauge in sync via
  // NoteResidentBytes, and drives EvictStripe/FaultIn itself because only it
  // can serialize its Shard.

  static constexpr uint32_t kNoVictim = ~uint32_t{0};

  // Validates and installs the policy and wipes any stale spill files. Must
  // run quiesced (the backend takes its all-stripe guard around the
  // container walk that seeds resident_bytes); not callable while a
  // checkpoint is active. One-way: spill stays enabled for the backend's
  // lifetime.
  Status EnableSpill(const SpillConfig& config) {
    if (config.budget_bytes == 0) {
      return InvalidArgumentError("spill budget must be > 0");
    }
    if (num_shards_ < 2) {
      return InvalidArgumentError(
          "spill needs >= 2 stripes (one must stay resident while another "
          "evicts); construct the backend with an explicit stripe count");
    }
    if (config.min_resident_stripes >= num_shards_) {
      return InvalidArgumentError("min_resident_stripes must leave at least "
                                  "one evictable stripe");
    }
    SDG_RETURN_IF_ERROR(PrepareSpillDir(config.dir));
    spill_config_ = config;
    resident_stripes_.store(num_shards_, std::memory_order_relaxed);
    spill_enabled_.store(true, std::memory_order_release);
    return Status::Ok();
  }

  bool spill_enabled() const {
    return spill_enabled_.load(std::memory_order_acquire);
  }
  const SpillConfig& spill_config() const { return spill_config_; }

  std::string SpillPath(uint32_t s) const {
    return spill_config_.dir + "/stripe-" + std::to_string(s) + ".spill";
  }

  // Resident-byte gauge, mirrored from the per-stripe counters so the budget
  // probe needs no locks.
  void NoteResidentBytes(int64_t delta) {
    resident_total_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t ResidentBytes() const {
    return resident_total_.load(std::memory_order_relaxed);
  }
  bool OverBudget() const {
    return spill_enabled() &&
           ResidentBytes() >
               static_cast<int64_t>(spill_config_.budget_bytes);
  }

  void TouchRef(uint32_t s) const {
    if (spill_enabled()) {
      stripes_[s].ref.store(1, std::memory_order_relaxed);
    }
  }

  // Second-chance clock over the resident stripes. `exclude` shields the
  // stripe the caller just touched/faulted-in from immediate re-eviction
  // (pass kNoVictim to scan all). Returns kNoVictim when eviction would drop
  // below min_resident_stripes or nothing is evictable.
  uint32_t PickSpillVictim(uint32_t exclude) {
    if (resident_stripes_.load(std::memory_order_relaxed) <=
        spill_config_.min_resident_stripes) {
      return kNoVictim;
    }
    const uint32_t n = num_shards_;
    for (uint32_t i = 0; i < 2 * n; ++i) {
      uint32_t s =
          static_cast<uint32_t>(clock_hand_.fetch_add(1, std::memory_order_relaxed) & mask_);
      if (s == exclude || stripes_[s].spilled.load(std::memory_order_relaxed)) {
        continue;
      }
      if (stripes_[s].ref.exchange(0, std::memory_order_relaxed) == 0) {
        return s;
      }
    }
    // Everything was recently referenced: take the next resident stripe.
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t s =
          static_cast<uint32_t>(clock_hand_.fetch_add(1, std::memory_order_relaxed) & mask_);
      if (s != exclude && !stripes_[s].spilled.load(std::memory_order_relaxed)) {
        return s;
      }
    }
    return kNoVictim;
  }

  // Bookkeeping around a spilled-flag flip; call under the stripe's
  // exclusive lock, right where the flag is stored. The event counters are
  // separate (NoteEviction/NoteFaultIn) because Clear and partition
  // extraction also flip stripes back without a logical fault-in.
  void NoteStripeSpilled(Stripe& st, uint64_t records, uint64_t blob_bytes) {
    st.spilled.store(true, std::memory_order_relaxed);
    st.spilled_records = records;
    st.spilled_blob_bytes = blob_bytes;
    resident_stripes_.fetch_sub(1, std::memory_order_relaxed);
    spilled_blob_total_.fetch_add(static_cast<int64_t>(blob_bytes),
                                  std::memory_order_relaxed);
  }
  void NoteStripeResident(Stripe& st) {
    st.spilled.store(false, std::memory_order_relaxed);
    spilled_blob_total_.fetch_sub(static_cast<int64_t>(st.spilled_blob_bytes),
                                  std::memory_order_relaxed);
    st.spilled_records = 0;
    st.spilled_blob_bytes = 0;
    resident_stripes_.fetch_add(1, std::memory_order_relaxed);
  }
  // Blob rewritten in place (cold-overlay compaction / partition extraction).
  void NoteBlobRewritten(Stripe& st, uint64_t records, uint64_t blob_bytes) {
    spilled_blob_total_.fetch_add(
        static_cast<int64_t>(blob_bytes) -
            static_cast<int64_t>(st.spilled_blob_bytes),
        std::memory_order_relaxed);
    st.spilled_records = records;
    st.spilled_blob_bytes = blob_bytes;
  }
  void NoteEviction() { evictions_.fetch_add(1, std::memory_order_relaxed); }
  void NoteFaultIn() { fault_ins_.fetch_add(1, std::memory_order_relaxed); }
  void NoteColdLookup() const {
    cold_lookups_.fetch_add(1, std::memory_order_relaxed);
  }

  SpillStats GetSpillStats() const {
    SpillStats stats;
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.fault_ins = fault_ins_.load(std::memory_order_relaxed);
    stats.cold_lookups = cold_lookups_.load(std::memory_order_relaxed);
    stats.spilled_stripes =
        num_shards_ - resident_stripes_.load(std::memory_order_relaxed);
    int64_t blob = spilled_blob_total_.load(std::memory_order_relaxed);
    stats.spilled_bytes = blob > 0 ? static_cast<uint64_t>(blob) : 0;
    int64_t res = resident_total_.load(std::memory_order_relaxed);
    stats.resident_bytes = res > 0 ? static_cast<uint64_t>(res) : 0;
    return stats;
  }

 private:
  uint32_t num_shards_ = 0;
  uint64_t mask_ = 0;
  std::unique_ptr<Stripe[]> stripes_;
  // Flips only under AllWriteGuard; atomic so checkpoint_active() can be
  // observed without any stripe lock.
  std::atomic<bool> checkpoint_active_{false};

  // --- Cold-tier policy state ----------------------------------------------
  SpillConfig spill_config_;           // immutable after EnableSpill
  std::atomic<bool> spill_enabled_{false};
  std::atomic<int64_t> resident_total_{0};
  std::atomic<uint64_t> clock_hand_{0};
  std::atomic<uint32_t> resident_stripes_{0};  // seeded by EnableSpill caller
  std::atomic<int64_t> spilled_blob_total_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> fault_ins_{0};
  mutable std::atomic<uint64_t> cold_lookups_{0};
};

}  // namespace sdg::state

#endif  // SDG_STATE_SHARDED_STATE_H_
