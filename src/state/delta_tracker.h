// DeltaTracker: epoch-aware dirty-id bookkeeping shared by the StateBackend
// implementations.
//
// Between periodic full bases, a delta epoch persists only the entries that
// changed or were erased since the previous committed epoch. Each backend
// picks its delta granularity (KeyedDict: keys, SparseMatrix/DenseMatrix:
// rows, VectorState: index blocks) and funnels every mutation through
// Touch(). The tracker then implements the epoch protocol:
//
//   Touch(id)        every mutation, under the backend's state lock
//   Freeze()         at BeginCheckpoint — the accumulated change set becomes
//                    this epoch's frozen set; later writes accrue to the next
//   Ready()          true when the frozen set applied over the previous
//                    committed epoch reconstructs the state (else: full base)
//   Resolve(true)    epoch durable — commit the baseline, drop the frozen set
//   Resolve(false)   epoch abandoned — merge the frozen set back so the next
//                    delta is a superset (a superset delta restores the same
//                    state, so an epoch whose durability is uncertain — e.g.
//                    a crash after the meta write but before the ack — is
//                    safe to count as failed)
//   Invalidate()     the in-memory state diverged from any persisted baseline
//                    (Clear, restore, repartition): force a full base next
#ifndef SDG_STATE_DELTA_TRACKER_H_
#define SDG_STATE_DELTA_TRACKER_H_

#include <cstddef>
#include <unordered_set>
#include <utility>

namespace sdg::state {

template <typename Id>
class DeltaTracker {
 public:
  void Enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  void Touch(const Id& id) {
    if (enabled_) {
      changed_.insert(id);
    }
  }

  void Freeze() {
    if (!enabled_) {
      return;
    }
    frozen_ = std::move(changed_);
    changed_.clear();
  }

  bool Ready() const { return enabled_ && has_base_; }

  // The frozen set is immutable between Freeze() and Resolve(), so the
  // serialisation thread may iterate it without the state lock while a
  // checkpoint is active (writes go to `changed_`).
  const std::unordered_set<Id>& frozen() const { return frozen_; }

  void Resolve(bool committed) {
    if (!enabled_) {
      return;
    }
    if (committed) {
      has_base_ = true;
      frozen_.clear();
    } else {
      changed_.insert(frozen_.begin(), frozen_.end());
      frozen_.clear();
    }
  }

  void Invalidate() {
    has_base_ = false;
    changed_.clear();
    frozen_.clear();
  }

  size_t ChangedCount() const { return changed_.size(); }

 private:
  bool enabled_ = false;
  bool has_base_ = false;
  std::unordered_set<Id> changed_;
  std::unordered_set<Id> frozen_;
};

}  // namespace sdg::state

#endif  // SDG_STATE_DELTA_TRACKER_H_
