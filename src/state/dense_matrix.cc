#include "src/state/dense_matrix.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/serialize.h"

namespace sdg::state {

double DenseMatrix::Get(size_t row, size_t col) const {
  return shards_.Read(RowHash(row), [&](const RowShard& sh, bool active) {
    SDG_CHECK(row < rows_ && col < cols_) << "DenseMatrix index out of range";
    if (active) {
      auto it = sh.dirty.find(Index(row, col));
      if (it != sh.dirty.end()) {
        return it->second;
      }
    }
    return data_[Index(row, col)];
  });
}

void DenseMatrix::Set(size_t row, size_t col, double v) {
  shards_.Write(RowHash(row),
                [&](RowShard& sh, DeltaTracker<size_t>& delta, bool active) {
                  SDG_CHECK(row < rows_ && col < cols_)
                      << "DenseMatrix index out of range";
                  if (delta.enabled()) {
                    delta.Touch(row);
                  }
                  if (active) {
                    sh.dirty[Index(row, col)] = v;
                  } else {
                    data_[Index(row, col)] = v;
                  }
                });
}

void DenseMatrix::Add(size_t row, size_t col, double delta_v) {
  shards_.Write(RowHash(row),
                [&](RowShard& sh, DeltaTracker<size_t>& delta, bool active) {
                  SDG_CHECK(row < rows_ && col < cols_)
                      << "DenseMatrix index out of range";
                  if (delta.enabled()) {
                    delta.Touch(row);
                  }
                  size_t idx = Index(row, col);
                  if (active) {
                    auto it = sh.dirty.find(idx);
                    double base = it != sh.dirty.end() ? it->second : data_[idx];
                    sh.dirty[idx] = base + delta_v;
                  } else {
                    data_[idx] += delta_v;
                  }
                });
}

void DenseMatrix::Fill(double v) {
  shards_.WriteAll([&](bool active) {
    for (size_t r = 0; r < rows_; ++r) {
      auto& delta = shards_.stripe(shards_.ShardOf(RowHash(r))).delta;
      if (delta.enabled()) {
        delta.Touch(r);
      }
    }
    if (active) {
      for (size_t i = 0; i < data_.size(); ++i) {
        shards_.stripe(shards_.ShardOf(RowHash(i / cols_))).data.dirty[i] = v;
      }
      return;
    }
    std::fill(data_.begin(), data_.end(), v);
  });
}

std::vector<double> DenseMatrix::GetRowDense(size_t row) const {
  // A row lives entirely in one stripe (the overlay is keyed by flat index,
  // the stripe by row hash), so the stripe's shared lock covers the read.
  return shards_.Read(RowHash(row), [&](const RowShard& sh, bool active) {
    SDG_CHECK(row < rows_) << "DenseMatrix row out of range";
    std::vector<double> out(
        data_.begin() + static_cast<ptrdiff_t>(row * cols_),
        data_.begin() + static_cast<ptrdiff_t>((row + 1) * cols_));
    if (active) {
      for (const auto& [idx, v] : sh.dirty) {
        if (idx / cols_ == row) {
          out[idx % cols_] = v;
        }
      }
    }
    return out;
  });
}

std::vector<double> DenseMatrix::MultiplyDense(
    const std::vector<double>& x) const {
  return shards_.ReadAll([&](bool active) {
    SDG_CHECK(x.size() == cols_) << "DenseMatrix multiply dimension mismatch";
    std::vector<double> out(rows_, 0.0);
    for (size_t r = 0; r < rows_; ++r) {
      double sum = 0.0;
      const double* row = data_.data() + r * cols_;
      for (size_t c = 0; c < cols_; ++c) {
        sum += row[c] * x[c];
      }
      out[r] = sum;
    }
    if (active) {
      // Correct rows touched by the dirty overlays.
      for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
        for (const auto& [idx, v] : shards_.stripe(s).data.dirty) {
          size_t r = idx / cols_;
          size_t c = idx % cols_;
          out[r] += (v - data_[idx]) * x[c];
        }
      }
    }
    return out;
  });
}

size_t DenseMatrix::SizeBytes() const {
  return shards_.ReadAll([&](bool) {
    size_t n = data_.size() * sizeof(double);
    for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
      n += shards_.stripe(s).data.dirty.size() * 24;
    }
    return n;
  });
}

void DenseMatrix::BeginCheckpoint() { shards_.BeginCheckpoint("DenseMatrix"); }

void DenseMatrix::EncodeRowLocked(size_t row, BinaryWriter& w) const {
  w.Clear();
  w.Write<uint64_t>(rows_);
  w.Write<uint64_t>(cols_);
  w.Write<uint64_t>(row);
  w.WriteBytes(data_.data() + row * cols_, cols_ * sizeof(double));
}

void DenseMatrix::SerializeRecords(const RecordSink& sink) const {
  // Whole-backend serialise sweeps the row-major array once in row order —
  // one sequential pass instead of num_shards passes skipping foreign rows.
  auto all = shards_.SerializeLockAll();
  BinaryWriter w;
  for (size_t r = 0; r < rows_; ++r) {
    if (r < row_extracted_.size() && row_extracted_[r]) {
      continue;
    }
    EncodeRowLocked(r, w);
    sink(RowHash(r), w.buffer().data(), w.buffer().size());
  }
}

void DenseMatrix::SerializeShardRecords(uint32_t shard,
                                        const RecordSink& sink) const {
  auto lock = shards_.SerializeLock(shard);
  BinaryWriter w;
  for (size_t r = 0; r < rows_; ++r) {
    uint64_t h = RowHash(r);
    if (shards_.ShardOf(h) != shard) {
      continue;
    }
    if (r < row_extracted_.size() && row_extracted_[r]) {
      continue;
    }
    EncodeRowLocked(r, w);
    sink(h, w.buffer().data(), w.buffer().size());
  }
}

uint64_t DenseMatrix::EndCheckpoint() {
  return shards_.EndCheckpoint("DenseMatrix", [&](uint32_t, RowShard& sh) {
    uint64_t consolidated = sh.dirty.size();
    for (const auto& [idx, v] : sh.dirty) {
      data_[idx] = v;
    }
    sh.dirty.clear();
    return consolidated;
  });
}

void DenseMatrix::EnableDeltaTracking() { shards_.EnableDeltaTracking(); }

bool DenseMatrix::DeltaReady() const { return shards_.DeltaReady(); }

void DenseMatrix::SerializeDirtyRecords(const DeltaRecordSink& sink) const {
  for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
    SerializeShardDirtyRecords(s, sink);
  }
}

void DenseMatrix::SerializeShardDirtyRecords(
    uint32_t shard, const DeltaRecordSink& sink) const {
  auto lock = shards_.SerializeLock(shard);
  BinaryWriter w;
  for (size_t r : shards_.stripe(shard).delta.frozen()) {
    if (r >= rows_ || (r < row_extracted_.size() && row_extracted_[r])) {
      continue;
    }
    EncodeRowLocked(r, w);
    sink(RowHash(r), w.buffer().data(), w.buffer().size(),
         /*tombstone=*/false);
  }
}

void DenseMatrix::ResolveEpoch(bool committed) {
  shards_.ResolveEpoch(committed);
}

void DenseMatrix::Clear() {
  shards_.ClearAll([&](uint32_t s, RowShard& sh) {
    if (s == 0) {
      rows_ = 0;
      cols_ = 0;
      data_.clear();
      row_extracted_.clear();
    }
    sh.dirty.clear();
  });
}

Status DenseMatrix::RestoreRecord(const uint8_t* payload, size_t size) {
  BinaryReader r(payload, size);
  SDG_ASSIGN_OR_RETURN(uint64_t rows, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t cols, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t row, r.Read<uint64_t>());
  const uint64_t h = RowHash(row);
  Status status = Status::Ok();
  auto install = [&](DeltaTracker<size_t>& delta) {
    if (rows != rows_ || cols != cols_ || row >= rows_) {
      status =
          Status(StatusCode::kDataLoss, "DenseMatrix record shape mismatch");
      return;
    }
    if (r.remaining() < cols_ * sizeof(double)) {
      status = Status(StatusCode::kDataLoss, "short DenseMatrix row record");
      return;
    }
    for (size_t c = 0; c < cols_; ++c) {
      data_[Index(row, c)] = r.Read<double>().value();
    }
    if (row < row_extracted_.size()) {
      row_extracted_[row] = 0;  // one byte per row: stripe-local write is safe
    }
    delta.Invalidate();
  };
  // Parallel chunk ingestion lands here concurrently: once the shape is set,
  // each row restore takes only its stripe's lock. The first record of an
  // empty matrix initialises the shape under the all-stripe guard.
  bool done = shards_.Write(h, [&](RowShard&, DeltaTracker<size_t>& delta,
                                   bool) {
    if (rows_ == 0 && cols_ == 0) {
      return false;  // shape-initialising path: escalate
    }
    install(delta);
    return true;
  });
  if (!done) {
    shards_.WriteAll([&](bool) {
      if (rows_ == 0 && cols_ == 0) {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows_ * cols_, 0.0);
      }
      install(shards_.stripe(shards_.ShardOf(h)).delta);
    });
  }
  return status;
}

Status DenseMatrix::ExtractPartition(uint32_t part, uint32_t num_parts,
                                     const RecordSink& sink) {
  return shards_.WriteAll([&](bool active) -> Status {
    if (active) {
      return FailedPreconditionError(
          "cannot repartition DenseMatrix during an active checkpoint");
    }
    if (row_extracted_.size() < rows_) {
      row_extracted_.resize(rows_, 0);
    }
    BinaryWriter w;
    for (size_t r = 0; r < rows_; ++r) {
      if (row_extracted_[r]) {
        continue;
      }
      uint64_t h = RowHash(r);
      if (h % num_parts != part) {
        continue;
      }
      EncodeRowLocked(r, w);
      sink(h, w.buffer().data(), w.buffer().size());
      std::fill(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_), 0.0);
      row_extracted_[r] = 1;
    }
    for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
      shards_.stripe(s).delta.Invalidate();
    }
    return Status::Ok();
  });
}

}  // namespace sdg::state
