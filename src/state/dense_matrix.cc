#include "src/state/dense_matrix.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/serialize.h"

namespace sdg::state {

double DenseMatrix::Get(size_t row, size_t col) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(row < rows_ && col < cols_) << "DenseMatrix index out of range";
  if (checkpoint_active_) {
    auto it = dirty_.find(Index(row, col));
    if (it != dirty_.end()) {
      return it->second;
    }
  }
  return data_[Index(row, col)];
}

void DenseMatrix::Set(size_t row, size_t col, double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(row < rows_ && col < cols_) << "DenseMatrix index out of range";
  delta_.Touch(row);
  if (checkpoint_active_) {
    dirty_[Index(row, col)] = v;
  } else {
    data_[Index(row, col)] = v;
  }
}

void DenseMatrix::Add(size_t row, size_t col, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(row < rows_ && col < cols_) << "DenseMatrix index out of range";
  delta_.Touch(row);
  size_t idx = Index(row, col);
  if (checkpoint_active_) {
    auto it = dirty_.find(idx);
    double base = it != dirty_.end() ? it->second : data_[idx];
    dirty_[idx] = base + delta;
  } else {
    data_[idx] += delta;
  }
}

void DenseMatrix::Fill(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t r = 0; r < rows_; ++r) {
    delta_.Touch(r);
  }
  if (checkpoint_active_) {
    for (size_t i = 0; i < data_.size(); ++i) {
      dirty_[i] = v;
    }
    return;
  }
  std::fill(data_.begin(), data_.end(), v);
}

std::vector<double> DenseMatrix::GetRowDense(size_t row) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(row < rows_) << "DenseMatrix row out of range";
  std::vector<double> out(data_.begin() + static_cast<ptrdiff_t>(row * cols_),
                          data_.begin() + static_cast<ptrdiff_t>((row + 1) * cols_));
  if (checkpoint_active_) {
    for (const auto& [idx, v] : dirty_) {
      if (idx / cols_ == row) {
        out[idx % cols_] = v;
      }
    }
  }
  return out;
}

std::vector<double> DenseMatrix::MultiplyDense(const std::vector<double>& x) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(x.size() == cols_) << "DenseMatrix multiply dimension mismatch";
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) {
      sum += row[c] * x[c];
    }
    out[r] = sum;
  }
  if (checkpoint_active_) {
    // Correct rows touched by the dirty overlay.
    for (const auto& [idx, v] : dirty_) {
      size_t r = idx / cols_;
      size_t c = idx % cols_;
      out[r] += (v - data_[idx]) * x[c];
    }
  }
  return out;
}

size_t DenseMatrix::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.size() * sizeof(double) + dirty_.size() * 24;
}

void DenseMatrix::BeginCheckpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(!checkpoint_active_) << "checkpoint already active on DenseMatrix";
  checkpoint_active_ = true;
  delta_.Freeze();
}

void DenseMatrix::SerializeRecords(const RecordSink& sink) const {
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  if (!checkpoint_active()) {
    lock.lock();
  }
  for (size_t r = 0; r < rows_; ++r) {
    if (r < row_extracted_.size() && row_extracted_[r]) {
      continue;
    }
    BinaryWriter w;
    w.Write<uint64_t>(rows_);
    w.Write<uint64_t>(cols_);
    w.Write<uint64_t>(r);
    w.WriteBytes(data_.data() + r * cols_, cols_ * sizeof(double));
    sink(MixHash64(r), w.buffer().data(), w.buffer().size());
  }
}

uint64_t DenseMatrix::EndCheckpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(checkpoint_active_) << "EndCheckpoint without BeginCheckpoint";
  uint64_t consolidated = dirty_.size();
  for (const auto& [idx, v] : dirty_) {
    data_[idx] = v;
  }
  dirty_.clear();
  checkpoint_active_ = false;
  return consolidated;
}

void DenseMatrix::EnableDeltaTracking() {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Enable();
}

bool DenseMatrix::DeltaReady() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delta_.Ready();
}

void DenseMatrix::SerializeDirtyRecords(const DeltaRecordSink& sink) const {
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  if (!checkpoint_active()) {
    lock.lock();
  }
  for (size_t r : delta_.frozen()) {
    if (r >= rows_ || (r < row_extracted_.size() && row_extracted_[r])) {
      continue;
    }
    BinaryWriter w;
    w.Write<uint64_t>(rows_);
    w.Write<uint64_t>(cols_);
    w.Write<uint64_t>(r);
    w.WriteBytes(data_.data() + r * cols_, cols_ * sizeof(double));
    sink(MixHash64(r), w.buffer().data(), w.buffer().size(),
         /*tombstone=*/false);
  }
}

void DenseMatrix::ResolveEpoch(bool committed) {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Resolve(committed);
}

void DenseMatrix::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rows_ = 0;
  cols_ = 0;
  data_.clear();
  dirty_.clear();
  row_extracted_.clear();
  delta_.Invalidate();
}

Status DenseMatrix::RestoreRecord(const uint8_t* payload, size_t size) {
  BinaryReader r(payload, size);
  SDG_ASSIGN_OR_RETURN(uint64_t rows, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t cols, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t row, r.Read<uint64_t>());
  std::lock_guard<std::mutex> lock(mutex_);
  if (rows_ == 0 && cols_ == 0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows_ * cols_, 0.0);
  }
  if (rows != rows_ || cols != cols_ || row >= rows_) {
    return Status(StatusCode::kDataLoss, "DenseMatrix record shape mismatch");
  }
  if (r.remaining() < cols_ * sizeof(double)) {
    return Status(StatusCode::kDataLoss, "short DenseMatrix row record");
  }
  for (size_t c = 0; c < cols_; ++c) {
    data_[Index(row, c)] = r.Read<double>().value();
  }
  if (row < row_extracted_.size()) {
    row_extracted_[row] = false;
  }
  delta_.Invalidate();
  return Status::Ok();
}

Status DenseMatrix::ExtractPartition(uint32_t part, uint32_t num_parts,
                                     const RecordSink& sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (checkpoint_active_) {
    return FailedPreconditionError(
        "cannot repartition DenseMatrix during an active checkpoint");
  }
  if (row_extracted_.size() < rows_) {
    row_extracted_.resize(rows_, false);
  }
  for (size_t r = 0; r < rows_; ++r) {
    if (row_extracted_[r]) {
      continue;
    }
    uint64_t h = MixHash64(r);
    if (h % num_parts != part) {
      continue;
    }
    BinaryWriter w;
    w.Write<uint64_t>(rows_);
    w.Write<uint64_t>(cols_);
    w.Write<uint64_t>(r);
    w.WriteBytes(data_.data() + r * cols_, cols_ * sizeof(double));
    sink(h, w.buffer().data(), w.buffer().size());
    std::fill(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
              data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_), 0.0);
    row_extracted_[r] = true;
  }
  delta_.Invalidate();
  return Status::Ok();
}

}  // namespace sdg::state
