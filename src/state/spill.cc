#include "src/state/spill.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>

namespace sdg::state {

namespace fs = std::filesystem;

Status PrepareSpillDir(const std::string& dir) {
  if (dir.empty()) {
    return InvalidArgumentError("spill dir is empty");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create spill dir " + dir + ": " +
                         ec.message());
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".spill" ||
        entry.path().extension() == ".tmp") {
      fs::remove(entry.path(), ec);
    }
  }
  return Status::Ok();
}

Status WriteSpillFileAtomic(const std::string& path,
                            const std::vector<uint8_t>& blob) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return InternalError("cannot open spill tmp file " + tmp);
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) {
      return InternalError("short write to spill tmp file " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return InternalError("cannot rename spill file into place at " + path);
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> ReadSpillFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return std::vector<uint8_t>{};  // absent = empty stripe on disk
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> blob(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(blob.data()), size)) {
    return DataLossError("short read from spill file " + path);
  }
  return blob;
}

void RemoveSpillFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

namespace {
std::atomic<bool> g_crash_armed{false};  // cheap probe on the hot path
std::mutex g_crash_mutex;
std::string g_crash_phase;
}  // namespace

void ArmSpillCrashPoint(std::string_view phase) {
  std::lock_guard<std::mutex> lock(g_crash_mutex);
  g_crash_phase.assign(phase);
  g_crash_armed.store(!g_crash_phase.empty(), std::memory_order_release);
}

void SpillCrashPoint(std::string_view phase) {
  if (!g_crash_armed.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_crash_mutex);
  if (!g_crash_phase.empty() && g_crash_phase == phase) {
    std::fprintf(stderr, "CRASH at %s\n", g_crash_phase.c_str());
    std::fflush(stderr);
    std::_Exit(41);
  }
}

}  // namespace sdg::state
