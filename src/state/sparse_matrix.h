// SparseMatrix: a row-indexed sparse double matrix SE.
//
// This is the Matrix type of the paper's CF algorithm (Alg. 1): `userItem`
// uses it as a @Partitioned SE (row = user, hash-partitioned by row key) and
// `coOcc` as a @Partial SE (replicated, updated independently, read globally
// via multiply + merge). Rows are the unit of partitioning and of checkpoint
// records; dirty state is a (row, col) -> value overlay.
#ifndef SDG_STATE_SPARSE_MATRIX_H_
#define SDG_STATE_SPARSE_MATRIX_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/serialize.h"
#include "src/state/delta_tracker.h"
#include "src/state/state_backend.h"

namespace sdg::state {

class SparseMatrix final : public StateBackend {
 public:
  using Row = std::unordered_map<int64_t, double>;

  SparseMatrix() = default;

  // --- Matrix operations ----------------------------------------------------

  double Get(int64_t row, int64_t col) const;
  void Set(int64_t row, int64_t col, double v);
  void Add(int64_t row, int64_t col, double delta);

  // Logical row contents (main overlaid with dirty).
  Row GetRow(int64_t row) const;

  // Logical row as a dense vector of length `dim` (missing entries are 0).
  std::vector<double> GetRowDense(int64_t row, size_t dim) const;

  // result[r] = sum_c M[r][c] * x[c] for every materialised row r < dim.
  // This is CF's `coOcc.multiply(userRow)` (Alg. 1, line 16).
  std::vector<double> MultiplyDense(const std::vector<double>& x,
                                    size_t dim) const;

  uint64_t RowCount() const;
  uint64_t NonZeroCount() const;

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "SparseMatrix"; }
  size_t SizeBytes() const override;
  uint64_t EntryCount() const override { return NonZeroCount(); }

  void BeginCheckpoint() override;
  void SerializeRecords(const RecordSink& sink) const override;
  uint64_t EndCheckpoint() override;
  bool checkpoint_active() const override {
    return checkpoint_active_.load(std::memory_order_acquire);
  }

  void EnableDeltaTracking() override;
  bool DeltaReady() const override;
  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override;
  void ResolveEpoch(bool committed) override;

  void Clear() override;
  Status RestoreRecord(const uint8_t* payload, size_t size) override;
  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override;

 private:
  static void EncodeRow(BinaryWriter& w, int64_t row, const Row& cols);

  mutable std::mutex mutex_;
  std::unordered_map<int64_t, Row> main_;
  std::unordered_map<int64_t, Row> dirty_;
  DeltaTracker<int64_t> delta_;  // delta granularity: rows
  std::atomic<bool> checkpoint_active_{false};
};

}  // namespace sdg::state

#endif  // SDG_STATE_SPARSE_MATRIX_H_
