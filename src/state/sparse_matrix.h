// SparseMatrix: a row-indexed sparse double matrix SE.
//
// This is the Matrix type of the paper's CF algorithm (Alg. 1): `userItem`
// uses it as a @Partitioned SE (row = user, hash-partitioned by row key) and
// `coOcc` as a @Partial SE (replicated, updated independently, read globally
// via multiply + merge). Rows are the unit of partitioning and of checkpoint
// records; dirty state is a (row, col) -> value overlay.
//
// Striping: rows are distributed over ShardedState stripes by their row-key
// hash (the same hash every checkpoint record carries), so single-row
// operations take only one stripe lock and serialisation fans out per shard.
#ifndef SDG_STATE_SPARSE_MATRIX_H_
#define SDG_STATE_SPARSE_MATRIX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/serialize.h"
#include "src/state/sharded_state.h"
#include "src/state/state_backend.h"

namespace sdg::state {

class SparseMatrix final : public StateBackend {
 public:
  using Row = std::unordered_map<int64_t, double>;
  using RowMap = std::unordered_map<int64_t, Row>;

  explicit SparseMatrix(uint32_t num_shards = DefaultStateShards())
      : shards_(num_shards) {}

  // --- Matrix operations ----------------------------------------------------

  double Get(int64_t row, int64_t col) const;
  void Set(int64_t row, int64_t col, double v);
  void Add(int64_t row, int64_t col, double delta);

  // Logical row contents (main overlaid with dirty).
  Row GetRow(int64_t row) const;

  // Logical row as a dense vector of length `dim` (missing entries are 0).
  std::vector<double> GetRowDense(int64_t row, size_t dim) const;

  // result[r] = sum_c M[r][c] * x[c] for every materialised row r < dim.
  // This is CF's `coOcc.multiply(userRow)` (Alg. 1, line 16).
  std::vector<double> MultiplyDense(const std::vector<double>& x,
                                    size_t dim) const;

  uint64_t RowCount() const;
  uint64_t NonZeroCount() const;

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "SparseMatrix"; }
  size_t SizeBytes() const override;
  uint64_t EntryCount() const override { return NonZeroCount(); }

  void BeginCheckpoint() override;
  void SerializeRecords(const RecordSink& sink) const override;
  uint64_t EndCheckpoint() override;
  bool checkpoint_active() const override {
    return shards_.checkpoint_active();
  }

  void EnableDeltaTracking() override;
  bool DeltaReady() const override;
  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override;
  void ResolveEpoch(bool committed) override;

  uint32_t SerializeShardCount() const override {
    return shards_.num_shards();
  }
  void SerializeShardRecords(uint32_t shard,
                             const RecordSink& sink) const override;
  void SerializeShardDirtyRecords(uint32_t shard,
                                  const DeltaRecordSink& sink) const override;

  void Clear() override;
  Status RestoreRecord(const uint8_t* payload, size_t size) override;
  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override;

  void ExclusiveBarrier(const std::function<void()>& fn) override {
    shards_.WriteAll([&](bool) { fn(); });
  }

  // The row maps are stripe-owned (same shape as KeyedDict) so a cold tier
  // is implementable here; it is deliberately not wired yet — no workload
  // pushes matrix state past memory. Until then, be explicit about it.
  Status ConfigureSpill(const SpillConfig& config) override {
    (void)config;
    return UnimplementedError(
        "SparseMatrix cold-tier spill not implemented yet (row maps are "
        "stripe-owned, so the KeyedDict design would transfer)");
  }

 private:
  // One stripe's slice of the row maps: main rows plus the checkpoint
  // overlay, both keyed to this stripe by the row hash.
  struct SparseShard {
    using DeltaId = int64_t;  // delta granularity: rows
    std::unordered_map<int64_t, Row> main;
    std::unordered_map<int64_t, Row> dirty;
  };

  static void EncodeRow(BinaryWriter& w, int64_t row, const Row& cols);

  ShardedState<SparseShard> shards_;
};

}  // namespace sdg::state

#endif  // SDG_STATE_SPARSE_MATRIX_H_
