// DenseMatrix: a fixed-shape dense double matrix SE, row-partitionable.
//
// One of the paper's predefined SE classes (§3.2). Checkpoint records and
// partition units are whole rows; dirty state is a flat (row*cols + col)
// overlay so fine-grained element updates stay cheap during a checkpoint.
#ifndef SDG_STATE_DENSE_MATRIX_H_
#define SDG_STATE_DENSE_MATRIX_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/state/delta_tracker.h"
#include "src/state/state_backend.h"

namespace sdg::state {

class DenseMatrix final : public StateBackend {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  // --- Matrix operations ----------------------------------------------------

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double Get(size_t row, size_t col) const;
  void Set(size_t row, size_t col, double v);
  void Add(size_t row, size_t col, double delta);

  // Sets every element to `v`, preserving the shape (e.g. zeroing an
  // accumulator between iterations).
  void Fill(double v);

  std::vector<double> GetRowDense(size_t row) const;

  // result = M * x (x has length cols()).
  std::vector<double> MultiplyDense(const std::vector<double>& x) const;

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "DenseMatrix"; }
  size_t SizeBytes() const override;
  uint64_t EntryCount() const override { return rows_ * cols_; }

  void BeginCheckpoint() override;
  void SerializeRecords(const RecordSink& sink) const override;
  uint64_t EndCheckpoint() override;
  bool checkpoint_active() const override {
    return checkpoint_active_.load(std::memory_order_acquire);
  }

  void EnableDeltaTracking() override;
  bool DeltaReady() const override;
  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override;
  void ResolveEpoch(bool committed) override;

  void Clear() override;
  Status RestoreRecord(const uint8_t* payload, size_t size) override;
  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override;

 private:
  size_t Index(size_t row, size_t col) const { return row * cols_ + col; }

  mutable std::mutex mutex_;
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
  std::unordered_map<size_t, double> dirty_;  // flat index -> value
  DeltaTracker<size_t> delta_;                // delta granularity: rows
  // Rows zeroed out by ExtractPartition are no longer owned by this instance;
  // they are skipped when serialising so restore does not resurrect them.
  std::vector<bool> row_extracted_;
  std::atomic<bool> checkpoint_active_{false};
};

}  // namespace sdg::state

#endif  // SDG_STATE_DENSE_MATRIX_H_
