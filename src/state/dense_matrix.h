// DenseMatrix: a fixed-shape dense double matrix SE, row-partitionable.
//
// One of the paper's predefined SE classes (§3.2). Checkpoint records and
// partition units are whole rows; dirty state is a flat (row*cols + col)
// overlay so fine-grained element updates stay cheap during a checkpoint.
//
// Striping: rows are owned by the stripe their row hash selects — element
// reads/writes take only that stripe's lock, while shape changes (Clear,
// shape-initialising restore), Fill, MultiplyDense and the checkpoint
// transitions go through ShardedState's all-stripe guards.
#ifndef SDG_STATE_DENSE_MATRIX_H_
#define SDG_STATE_DENSE_MATRIX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/serialize.h"
#include "src/state/sharded_state.h"
#include "src/state/state_backend.h"

namespace sdg::state {

class DenseMatrix final : public StateBackend {
 public:
  DenseMatrix() : shards_(DefaultStateShards()) {}
  DenseMatrix(size_t rows, size_t cols,
              uint32_t num_shards = DefaultStateShards())
      : shards_(num_shards), rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  // --- Matrix operations ----------------------------------------------------

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double Get(size_t row, size_t col) const;
  void Set(size_t row, size_t col, double v);
  void Add(size_t row, size_t col, double delta);

  // Sets every element to `v`, preserving the shape (e.g. zeroing an
  // accumulator between iterations).
  void Fill(double v);

  std::vector<double> GetRowDense(size_t row) const;

  // result = M * x (x has length cols()).
  std::vector<double> MultiplyDense(const std::vector<double>& x) const;

  // --- StateBackend ---------------------------------------------------------

  std::string_view TypeName() const override { return "DenseMatrix"; }
  size_t SizeBytes() const override;
  uint64_t EntryCount() const override { return rows_ * cols_; }

  void BeginCheckpoint() override;
  void SerializeRecords(const RecordSink& sink) const override;
  uint64_t EndCheckpoint() override;
  bool checkpoint_active() const override {
    return shards_.checkpoint_active();
  }

  void EnableDeltaTracking() override;
  bool DeltaReady() const override;
  void SerializeDirtyRecords(const DeltaRecordSink& sink) const override;
  void ResolveEpoch(bool committed) override;

  uint32_t SerializeShardCount() const override {
    return shards_.num_shards();
  }
  void SerializeShardRecords(uint32_t shard,
                             const RecordSink& sink) const override;
  void SerializeShardDirtyRecords(uint32_t shard,
                                  const DeltaRecordSink& sink) const override;

  void Clear() override;
  Status RestoreRecord(const uint8_t* payload, size_t size) override;
  Status ExtractPartition(uint32_t part, uint32_t num_parts,
                          const RecordSink& sink) override;

  void ExclusiveBarrier(const std::function<void()>& fn) override {
    shards_.WriteAll([&](bool) { fn(); });
  }

  // No cold tier: the matrix is one contiguous row-major array shared by all
  // stripes, so evicting a stripe cannot free its share of memory.
  Status ConfigureSpill(const SpillConfig& config) override {
    (void)config;
    return UnimplementedError(
        "DenseMatrix stores a contiguous row-major array; per-stripe "
        "eviction cannot release memory — no cold-tier spill");
  }

 private:
  // One stripe's slice: the checkpoint overlay (flat index -> value) for the
  // rows this stripe owns.
  struct RowShard {
    using DeltaId = size_t;  // delta granularity: rows
    std::unordered_map<size_t, double> dirty;
  };

  static uint64_t RowHash(size_t row) { return MixHash64(row); }
  size_t Index(size_t row, size_t col) const { return row * cols_ + col; }

  void EncodeRowLocked(size_t row, BinaryWriter& w) const;

  ShardedState<RowShard> shards_;
  // Shape and array resized/reset only with all stripes held exclusive;
  // elements of row r written only under r's stripe (or the all-stripe guard).
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
  // Rows zeroed out by ExtractPartition are no longer owned by this instance;
  // they are skipped when serialising so restore does not resurrect them.
  // One byte per row (not vector<bool>: per-row writes under different stripe
  // locks must touch distinct memory locations).
  std::vector<uint8_t> row_extracted_;
};

}  // namespace sdg::state

#endif  // SDG_STATE_DENSE_MATRIX_H_
