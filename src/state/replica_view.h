// ReplicaView: a read-only partial-state replica of one partition (§3.2).
//
// The owning worker publishes its state as checkpoint-epoch events: an
// *announce* the moment an epoch is cut (a few bytes — it advances the
// owner's epoch watermark), then the epoch's chunk blobs as a *base* (full
// contents) or a *delta* (dirty records + tombstones over the previous
// epoch). The view applies those events to a private StateBackend and tracks
// two watermarks:
//
//   applied_epoch    — the last epoch folded into the backend
//   announced_epoch  — the last epoch the owner announced cutting
//
// A bounded-stale read is admissible iff the replica has a valid base from
// the current owner and (announced - applied) <= the caller's max lag: the
// staleness bound is measured in checkpoint epochs against the owner's own
// watermark, so a replica that has stopped receiving blobs (wedged feed,
// mid-migration owner change) fails the bound instead of serving arbitrarily
// old data. Ownership changes force re-basing: delta events from a member
// other than the one that applied the base are rejected, and reads are
// refused until the new owner's base lands.
#ifndef SDG_STATE_REPLICA_VIEW_H_
#define SDG_STATE_REPLICA_VIEW_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/state/chunk.h"
#include "src/state/state_backend.h"

namespace sdg::state {

class ReplicaView {
 public:
  explicit ReplicaView(std::unique_ptr<StateBackend> backend)
      : backend_(std::move(backend)) {}

  // Owner watermark: epoch `epoch` exists at `member`. Monotonic per member;
  // an owner change moves the announce watermark to the new member (reads
  // fail the freshness check until its base arrives).
  void Announce(uint32_t member, uint64_t epoch) {
    std::unique_lock lock(mu_);
    if (member != announced_member_) {
      announced_member_ = member;
      announced_epoch_ = epoch;
      return;
    }
    if (epoch > announced_epoch_) announced_epoch_ = epoch;
  }

  // Replaces the replica contents with a full base of `epoch`.
  Status ApplyBase(uint32_t member, uint64_t epoch,
                   const std::vector<std::vector<uint8_t>>& chunks) {
    std::unique_lock lock(mu_);
    backend_->Clear();
    for (const auto& c : chunks) {
      SDG_RETURN_IF_ERROR(RestoreChunk(*backend_, c));
    }
    valid_ = true;
    member_ = member;
    applied_epoch_ = epoch;
    if (announced_member_ != member || announced_epoch_ < epoch) {
      announced_member_ = member;
      announced_epoch_ = epoch;
    }
    return Status::Ok();
  }

  // Applies a delta of `epoch` over the applied base. Rejected unless it
  // comes from the member whose base is applied and moves the epoch forward
  // — the publisher recovers by sending a fresh base.
  Status ApplyDelta(uint32_t member, uint64_t epoch,
                    const std::vector<std::vector<uint8_t>>& chunks) {
    std::unique_lock lock(mu_);
    if (!valid_ || member != member_) {
      return FailedPreconditionError("replica delta without matching base");
    }
    if (epoch <= applied_epoch_) {
      return Status::Ok();  // duplicate replay after reconnect
    }
    for (const auto& c : chunks) {
      SDG_RETURN_IF_ERROR(RestoreChunk(*backend_, c));
    }
    applied_epoch_ = epoch;
    if (announced_member_ != member || announced_epoch_ < epoch) {
      announced_member_ = member;
      announced_epoch_ = epoch;
    }
    return Status::Ok();
  }

  // Drops the replica contents (e.g. the feed reported an invalid stream).
  void Invalidate() {
    std::unique_lock lock(mu_);
    valid_ = false;
  }

  bool valid() const {
    std::shared_lock lock(mu_);
    return valid_;
  }
  uint64_t applied_epoch() const {
    std::shared_lock lock(mu_);
    return applied_epoch_;
  }
  uint64_t announced_epoch() const {
    std::shared_lock lock(mu_);
    return announced_epoch_;
  }

  // Runs `fn(backend, applied_epoch)` under the read lock iff the replica is
  // fresh within `max_lag` epochs of the owner's announce watermark. Returns
  // false (without calling fn) when the bound fails — the caller falls back
  // to the strong read path.
  template <typename Fn>
  bool ReadWithin(uint64_t max_lag, Fn&& fn) const {
    std::shared_lock lock(mu_);
    if (!valid_ || announced_member_ != member_) return false;
    if (announced_epoch_ - applied_epoch_ > max_lag) return false;
    fn(static_cast<const StateBackend&>(*backend_), applied_epoch_);
    return true;
  }

 private:
  mutable std::shared_mutex mu_;
  std::unique_ptr<StateBackend> backend_;
  bool valid_ = false;
  uint32_t member_ = 0;            // owner whose base is applied
  uint64_t applied_epoch_ = 0;
  uint32_t announced_member_ = 0;  // owner per the announce watermark
  uint64_t announced_epoch_ = 0;
};

}  // namespace sdg::state

#endif  // SDG_STATE_REPLICA_VIEW_H_
