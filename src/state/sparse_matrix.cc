#include "src/state/sparse_matrix.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/state/codec.h"

namespace sdg::state {

double SparseMatrix::Get(int64_t row, int64_t col) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (checkpoint_active_) {
    auto rit = dirty_.find(row);
    if (rit != dirty_.end()) {
      auto cit = rit->second.find(col);
      if (cit != rit->second.end()) {
        return cit->second;
      }
    }
  }
  auto rit = main_.find(row);
  if (rit == main_.end()) {
    return 0.0;
  }
  auto cit = rit->second.find(col);
  return cit == rit->second.end() ? 0.0 : cit->second;
}

void SparseMatrix::Set(int64_t row, int64_t col, double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Touch(row);
  if (checkpoint_active_) {
    dirty_[row][col] = v;
  } else {
    main_[row][col] = v;
  }
}

void SparseMatrix::Add(int64_t row, int64_t col, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Touch(row);
  if (checkpoint_active_) {
    auto rit = dirty_.find(row);
    if (rit != dirty_.end()) {
      auto cit = rit->second.find(col);
      if (cit != rit->second.end()) {
        cit->second += delta;
        return;
      }
    }
    double base = 0.0;
    auto mit = main_.find(row);
    if (mit != main_.end()) {
      auto cit = mit->second.find(col);
      if (cit != mit->second.end()) {
        base = cit->second;
      }
    }
    dirty_[row][col] = base + delta;
  } else {
    main_[row][col] += delta;
  }
}

SparseMatrix::Row SparseMatrix::GetRow(int64_t row) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Row out;
  auto mit = main_.find(row);
  if (mit != main_.end()) {
    out = mit->second;
  }
  if (checkpoint_active_) {
    auto dit = dirty_.find(row);
    if (dit != dirty_.end()) {
      for (const auto& [col, v] : dit->second) {
        out[col] = v;
      }
    }
  }
  return out;
}

std::vector<double> SparseMatrix::GetRowDense(int64_t row, size_t dim) const {
  Row r = GetRow(row);
  std::vector<double> out(dim, 0.0);
  for (const auto& [col, v] : r) {
    if (col >= 0 && static_cast<size_t>(col) < dim) {
      out[static_cast<size_t>(col)] = v;
    }
  }
  return out;
}

std::vector<double> SparseMatrix::MultiplyDense(const std::vector<double>& x,
                                                size_t dim) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> out(dim, 0.0);
  auto accumulate_row = [&](int64_t row, const Row& cols) {
    if (row < 0 || static_cast<size_t>(row) >= dim) {
      return;
    }
    double sum = 0.0;
    for (const auto& [col, v] : cols) {
      if (col >= 0 && static_cast<size_t>(col) < x.size()) {
        sum += v * x[static_cast<size_t>(col)];
      }
    }
    out[static_cast<size_t>(row)] = sum;
  };
  for (const auto& [row, cols] : main_) {
    if (checkpoint_active_) {
      auto dit = dirty_.find(row);
      if (dit != dirty_.end()) {
        // Merge dirty columns over the main row for this multiply.
        Row merged = cols;
        for (const auto& [c, v] : dit->second) {
          merged[c] = v;
        }
        accumulate_row(row, merged);
        continue;
      }
    }
    accumulate_row(row, cols);
  }
  if (checkpoint_active_) {
    for (const auto& [row, cols] : dirty_) {
      if (main_.count(row) == 0) {
        accumulate_row(row, cols);
      }
    }
  }
  return out;
}

uint64_t SparseMatrix::RowCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t n = main_.size();
  if (checkpoint_active_) {
    for (const auto& [row, cols] : dirty_) {
      if (main_.count(row) == 0) {
        ++n;
      }
    }
  }
  return n;
}

uint64_t SparseMatrix::NonZeroCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t n = 0;
  for (const auto& [row, cols] : main_) {
    n += cols.size();
  }
  if (checkpoint_active_) {
    for (const auto& [row, cols] : dirty_) {
      auto mit = main_.find(row);
      for (const auto& [col, v] : cols) {
        if (mit == main_.end() || mit->second.count(col) == 0) {
          ++n;
        }
      }
    }
  }
  return n;
}

size_t SparseMatrix::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t entries = 0;
  for (const auto& [row, cols] : main_) {
    entries += cols.size();
  }
  for (const auto& [row, cols] : dirty_) {
    entries += cols.size();
  }
  return entries * 24 + (main_.size() + dirty_.size()) * 48;
}

void SparseMatrix::BeginCheckpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(!checkpoint_active_) << "checkpoint already active on SparseMatrix";
  checkpoint_active_ = true;
  delta_.Freeze();
}

void SparseMatrix::EncodeRow(BinaryWriter& w, int64_t row, const Row& cols) {
  w.Write<int64_t>(row);
  w.Write<uint64_t>(cols.size());
  for (const auto& [col, v] : cols) {
    w.Write<int64_t>(col);
    w.Write<double>(v);
  }
}

void SparseMatrix::SerializeRecords(const RecordSink& sink) const {
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  if (!checkpoint_active()) {
    lock.lock();
  }
  for (const auto& [row, cols] : main_) {
    BinaryWriter w;
    EncodeRow(w, row, cols);
    sink(Codec<int64_t>::Hash(row), w.buffer().data(), w.buffer().size());
  }
}

uint64_t SparseMatrix::EndCheckpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  SDG_CHECK(checkpoint_active_) << "EndCheckpoint without BeginCheckpoint";
  uint64_t consolidated = 0;
  for (auto& [row, cols] : dirty_) {
    consolidated += cols.size();
    auto& target = main_[row];
    for (auto& [col, v] : cols) {
      target[col] = v;
    }
  }
  dirty_.clear();
  checkpoint_active_ = false;
  return consolidated;
}

void SparseMatrix::EnableDeltaTracking() {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Enable();
}

bool SparseMatrix::DeltaReady() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delta_.Ready();
}

void SparseMatrix::SerializeDirtyRecords(const DeltaRecordSink& sink) const {
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  if (!checkpoint_active()) {
    lock.lock();
  }
  for (int64_t row : delta_.frozen()) {
    auto it = main_.find(row);
    if (it == main_.end()) {
      continue;  // first touched while diverted to the overlay; folded later
    }
    BinaryWriter w;
    EncodeRow(w, row, it->second);
    sink(Codec<int64_t>::Hash(row), w.buffer().data(), w.buffer().size(),
         /*tombstone=*/false);
  }
}

void SparseMatrix::ResolveEpoch(bool committed) {
  std::lock_guard<std::mutex> lock(mutex_);
  delta_.Resolve(committed);
}

void SparseMatrix::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  main_.clear();
  dirty_.clear();
  delta_.Invalidate();
}

Status SparseMatrix::RestoreRecord(const uint8_t* payload, size_t size) {
  BinaryReader r(payload, size);
  SDG_ASSIGN_OR_RETURN(int64_t row, r.Read<int64_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t count, r.Read<uint64_t>());
  std::lock_guard<std::mutex> lock(mutex_);
  auto& target = main_[row];
  target.reserve(std::min<uint64_t>(count, r.remaining() / 16));
  for (uint64_t i = 0; i < count; ++i) {
    SDG_ASSIGN_OR_RETURN(int64_t col, r.Read<int64_t>());
    SDG_ASSIGN_OR_RETURN(double v, r.Read<double>());
    target[col] = v;
  }
  delta_.Invalidate();
  return Status::Ok();
}

Status SparseMatrix::ExtractPartition(uint32_t part, uint32_t num_parts,
                                      const RecordSink& sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (checkpoint_active_) {
    return FailedPreconditionError(
        "cannot repartition SparseMatrix during an active checkpoint");
  }
  for (auto it = main_.begin(); it != main_.end();) {
    uint64_t h = Codec<int64_t>::Hash(it->first);
    if (h % num_parts == part) {
      BinaryWriter w;
      EncodeRow(w, it->first, it->second);
      sink(h, w.buffer().data(), w.buffer().size());
      it = main_.erase(it);
    } else {
      ++it;
    }
  }
  delta_.Invalidate();
  return Status::Ok();
}

}  // namespace sdg::state
