#include "src/state/sparse_matrix.h"

#include <iterator>
#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/state/codec.h"

namespace sdg::state {

double SparseMatrix::Get(int64_t row, int64_t col) const {
  return shards_.Read(
      Codec<int64_t>::Hash(row), [&](const SparseShard& sh, bool active) {
        if (active) {
          auto rit = sh.dirty.find(row);
          if (rit != sh.dirty.end()) {
            auto cit = rit->second.find(col);
            if (cit != rit->second.end()) {
              return cit->second;
            }
          }
        }
        auto rit = sh.main.find(row);
        if (rit == sh.main.end()) {
          return 0.0;
        }
        auto cit = rit->second.find(col);
        return cit == rit->second.end() ? 0.0 : cit->second;
      });
}

void SparseMatrix::Set(int64_t row, int64_t col, double v) {
  shards_.Write(Codec<int64_t>::Hash(row),
                [&](SparseShard& sh, DeltaTracker<int64_t>& delta,
                    bool active) {
                  if (delta.enabled()) {
                    delta.Touch(row);
                  }
                  if (active) {
                    sh.dirty[row][col] = v;
                  } else {
                    sh.main[row][col] = v;
                  }
                });
}

void SparseMatrix::Add(int64_t row, int64_t col, double delta_v) {
  shards_.Write(
      Codec<int64_t>::Hash(row),
      [&](SparseShard& sh, DeltaTracker<int64_t>& delta, bool active) {
        if (delta.enabled()) {
          delta.Touch(row);
        }
        if (active) {
          auto rit = sh.dirty.find(row);
          if (rit != sh.dirty.end()) {
            auto cit = rit->second.find(col);
            if (cit != rit->second.end()) {
              cit->second += delta_v;
              return;
            }
          }
          double base = 0.0;
          auto mit = sh.main.find(row);
          if (mit != sh.main.end()) {
            auto cit = mit->second.find(col);
            if (cit != mit->second.end()) {
              base = cit->second;
            }
          }
          sh.dirty[row][col] = base + delta_v;
        } else {
          sh.main[row][col] += delta_v;
        }
      });
}

SparseMatrix::Row SparseMatrix::GetRow(int64_t row) const {
  return shards_.Read(Codec<int64_t>::Hash(row),
                      [&](const SparseShard& sh, bool active) {
                        Row out;
                        auto mit = sh.main.find(row);
                        if (mit != sh.main.end()) {
                          out = mit->second;
                        }
                        if (active) {
                          auto dit = sh.dirty.find(row);
                          if (dit != sh.dirty.end()) {
                            for (const auto& [col, v] : dit->second) {
                              out[col] = v;
                            }
                          }
                        }
                        return out;
                      });
}

std::vector<double> SparseMatrix::GetRowDense(int64_t row, size_t dim) const {
  Row r = GetRow(row);
  std::vector<double> out(dim, 0.0);
  for (const auto& [col, v] : r) {
    if (col >= 0 && static_cast<size_t>(col) < dim) {
      out[static_cast<size_t>(col)] = v;
    }
  }
  return out;
}

std::vector<double> SparseMatrix::MultiplyDense(const std::vector<double>& x,
                                                size_t dim) const {
  std::vector<double> out(dim, 0.0);
  auto accumulate_row = [&](int64_t row, const Row& cols) {
    if (row < 0 || static_cast<size_t>(row) >= dim) {
      return;
    }
    double sum = 0.0;
    for (const auto& [col, v] : cols) {
      if (col >= 0 && static_cast<size_t>(col) < x.size()) {
        sum += v * x[static_cast<size_t>(col)];
      }
    }
    out[static_cast<size_t>(row)] = sum;
  };
  // Rows are disjoint across stripes, so a stripe-at-a-time walk fills
  // disjoint slots of `out`.
  shards_.ReadEach([&](const SparseShard& sh, bool active) {
    for (const auto& [row, cols] : sh.main) {
      if (active) {
        auto dit = sh.dirty.find(row);
        if (dit != sh.dirty.end()) {
          // Merge dirty columns over the main row for this multiply.
          Row merged = cols;
          for (const auto& [c, v] : dit->second) {
            merged[c] = v;
          }
          accumulate_row(row, merged);
          continue;
        }
      }
      accumulate_row(row, cols);
    }
    if (active) {
      for (const auto& [row, cols] : sh.dirty) {
        if (sh.main.count(row) == 0) {
          accumulate_row(row, cols);
        }
      }
    }
  });
  return out;
}

uint64_t SparseMatrix::RowCount() const {
  uint64_t n = 0;
  shards_.ReadEach([&](const SparseShard& sh, bool active) {
    n += sh.main.size();
    if (active) {
      for (const auto& [row, cols] : sh.dirty) {
        if (sh.main.count(row) == 0) {
          ++n;
        }
      }
    }
  });
  return n;
}

uint64_t SparseMatrix::NonZeroCount() const {
  uint64_t n = 0;
  shards_.ReadEach([&](const SparseShard& sh, bool active) {
    for (const auto& [row, cols] : sh.main) {
      n += cols.size();
    }
    if (active) {
      for (const auto& [row, cols] : sh.dirty) {
        auto mit = sh.main.find(row);
        for (const auto& [col, v] : cols) {
          if (mit == sh.main.end() || mit->second.count(col) == 0) {
            ++n;
          }
        }
      }
    }
  });
  return n;
}

size_t SparseMatrix::SizeBytes() const {
  size_t entries = 0;
  size_t rows = 0;
  shards_.ReadEach([&](const SparseShard& sh, bool) {
    for (const auto& [row, cols] : sh.main) {
      entries += cols.size();
    }
    for (const auto& [row, cols] : sh.dirty) {
      entries += cols.size();
    }
    rows += sh.main.size() + sh.dirty.size();
  });
  return entries * 24 + rows * 48;
}

void SparseMatrix::BeginCheckpoint() {
  shards_.BeginCheckpoint("SparseMatrix");
}

void SparseMatrix::EncodeRow(BinaryWriter& w, int64_t row, const Row& cols) {
  w.Write<int64_t>(row);
  w.Write<uint64_t>(cols.size());
  for (const auto& [col, v] : cols) {
    w.Write<int64_t>(col);
    w.Write<double>(v);
  }
}

void SparseMatrix::SerializeRecords(const RecordSink& sink) const {
  // Interleaved cross-stripe walk: stripe assignment is hash-random, so a
  // round-robin pass visits row nodes in near allocation order instead of
  // num_shards scattered passes (see KeyedDict::SerializeRecords).
  auto all = shards_.SerializeLockAll();
  const uint32_t n = shards_.num_shards();
  std::vector<RowMap::const_iterator> it(n);
  std::vector<RowMap::const_iterator> end(n);
  for (uint32_t s = 0; s < n; ++s) {
    it[s] = shards_.stripe(s).data.main.begin();
    end[s] = shards_.stripe(s).data.main.end();
  }
  BinaryWriter w;
  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t s = 0; s < n; ++s) {
      if (it[s] == end[s]) {
        continue;
      }
      if (auto next = std::next(it[s]); next != end[s]) {
        PrefetchRecord(next);  // one rotation of lead time per stripe
      }
      const auto& [row, cols] = *it[s];
      w.Clear();
      EncodeRow(w, row, cols);
      sink(Codec<int64_t>::Hash(row), w.buffer().data(), w.buffer().size());
      ++it[s];
      progress = true;
    }
  }
}

void SparseMatrix::SerializeShardRecords(uint32_t shard,
                                         const RecordSink& sink) const {
  auto lock = shards_.SerializeLock(shard);
  BinaryWriter w;
  for (const auto& [row, cols] : shards_.stripe(shard).data.main) {
    w.Clear();
    EncodeRow(w, row, cols);
    sink(Codec<int64_t>::Hash(row), w.buffer().data(), w.buffer().size());
  }
}

uint64_t SparseMatrix::EndCheckpoint() {
  return shards_.EndCheckpoint("SparseMatrix", [](uint32_t, SparseShard& sh) {
    uint64_t consolidated = 0;
    for (auto& [row, cols] : sh.dirty) {
      consolidated += cols.size();
      auto& target = sh.main[row];
      for (auto& [col, v] : cols) {
        target[col] = v;
      }
    }
    sh.dirty.clear();
    return consolidated;
  });
}

void SparseMatrix::EnableDeltaTracking() { shards_.EnableDeltaTracking(); }

bool SparseMatrix::DeltaReady() const { return shards_.DeltaReady(); }

void SparseMatrix::SerializeDirtyRecords(const DeltaRecordSink& sink) const {
  for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
    SerializeShardDirtyRecords(s, sink);
  }
}

void SparseMatrix::SerializeShardDirtyRecords(
    uint32_t shard, const DeltaRecordSink& sink) const {
  auto lock = shards_.SerializeLock(shard);
  const auto& stripe = shards_.stripe(shard);
  BinaryWriter w;
  for (int64_t row : stripe.delta.frozen()) {
    auto it = stripe.data.main.find(row);
    if (it == stripe.data.main.end()) {
      continue;  // first touched while diverted to the overlay; folded later
    }
    w.Clear();
    EncodeRow(w, row, it->second);
    sink(Codec<int64_t>::Hash(row), w.buffer().data(), w.buffer().size(),
         /*tombstone=*/false);
  }
}

void SparseMatrix::ResolveEpoch(bool committed) {
  shards_.ResolveEpoch(committed);
}

void SparseMatrix::Clear() {
  shards_.ClearAll([](uint32_t, SparseShard& sh) {
    sh.main.clear();
    sh.dirty.clear();
  });
}

Status SparseMatrix::RestoreRecord(const uint8_t* payload, size_t size) {
  BinaryReader r(payload, size);
  SDG_ASSIGN_OR_RETURN(int64_t row, r.Read<int64_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t count, r.Read<uint64_t>());
  Status status = Status::Ok();
  shards_.Write(
      Codec<int64_t>::Hash(row),
      [&](SparseShard& sh, DeltaTracker<int64_t>& delta, bool) {
        auto& target = sh.main[row];
        target.reserve(std::min<uint64_t>(count, r.remaining() / 16));
        for (uint64_t i = 0; i < count; ++i) {
          auto col = r.Read<int64_t>();
          auto v = r.Read<double>();
          if (!col.ok() || !v.ok()) {
            status = Status(StatusCode::kDataLoss,
                            "short SparseMatrix row record");
            return;
          }
          target[col.value()] = v.value();
        }
        delta.Invalidate();
      });
  return status;
}

Status SparseMatrix::ExtractPartition(uint32_t part, uint32_t num_parts,
                                      const RecordSink& sink) {
  return shards_.WriteAll([&](bool active) -> Status {
    if (active) {
      return FailedPreconditionError(
          "cannot repartition SparseMatrix during an active checkpoint");
    }
    BinaryWriter w;
    for (uint32_t s = 0; s < shards_.num_shards(); ++s) {
      auto& stripe = shards_.stripe(s);
      for (auto it = stripe.data.main.begin();
           it != stripe.data.main.end();) {
        uint64_t h = Codec<int64_t>::Hash(it->first);
        if (h % num_parts == part) {
          w.Clear();
          EncodeRow(w, it->first, it->second);
          sink(h, w.buffer().data(), w.buffer().size());
          it = stripe.data.main.erase(it);
        } else {
          ++it;
        }
      }
      stripe.delta.Invalidate();
    }
    return Status::Ok();
  });
}

}  // namespace sdg::state
