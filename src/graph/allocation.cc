#include "src/graph/allocation.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace sdg::graph {

std::string Allocation::ToString(const Sdg& g) const {
  std::ostringstream os;
  for (NodeId n = 0; n < num_nodes; ++n) {
    os << "node " << n << ":";
    for (const auto& s : g.states()) {
      if (state_nodes[s.id] == n) {
        os << " [SE " << s.name << "]";
      }
    }
    for (const auto& t : g.tasks()) {
      if (task_nodes[t.id] == n) {
        os << " (TE " << t.name << ")";
      }
    }
    os << "\n";
  }
  return os.str();
}

Result<Allocation> AllocateSdg(const Sdg& g, uint32_t num_nodes) {
  if (num_nodes == 0) {
    return InvalidArgumentError("allocation requires at least one node");
  }
  Allocation a;
  a.num_nodes = num_nodes;
  constexpr NodeId kUnassigned = UINT32_MAX;
  a.state_nodes.assign(g.states().size(), kUnassigned);
  a.task_nodes.assign(g.tasks().size(), kUnassigned);

  NodeId next_node = 0;
  auto take_node = [&]() -> NodeId {
    NodeId n = next_node;
    next_node = (next_node + 1) % num_nodes;
    return n;
  };

  // Step 1: colocate all SEs accessed by TEs that participate in a cycle.
  std::vector<TaskId> cyclic = g.TasksOnCycles();
  std::set<StateId> cycle_states;
  for (TaskId t : cyclic) {
    const auto& te = g.task(t);
    if (te.state.has_value()) {
      cycle_states.insert(*te.state);
    }
  }
  if (!cycle_states.empty()) {
    NodeId shared = take_node();
    for (StateId s : cycle_states) {
      a.state_nodes[s] = shared;
    }
  }

  // Step 2: remaining SEs on separate nodes.
  for (const auto& s : g.states()) {
    if (a.state_nodes[s.id] == kUnassigned) {
      a.state_nodes[s.id] = take_node();
    }
  }

  // Step 3: TEs join the SE they access.
  for (const auto& t : g.tasks()) {
    if (t.state.has_value()) {
      a.task_nodes[t.id] = a.state_nodes[*t.state];
    }
  }

  // Step 4: remaining (stateless) TEs on separate nodes.
  for (const auto& t : g.tasks()) {
    if (a.task_nodes[t.id] == kUnassigned) {
      a.task_nodes[t.id] = take_node();
    }
  }
  return a;
}

}  // namespace sdg::graph
