// The four-step TE/SE-to-node allocation algorithm of §3.3.
//
// Step 1: SEs accessed by TEs on a dataflow cycle are colocated (cuts
//         communication in iterative algorithms).
// Step 2: remaining SEs are spread over separate nodes (maximises the memory
//         available to each).
// Step 3: TEs are colocated with the SE they access (no remote state access).
// Step 4: stateless / unallocated TEs go to separate nodes.
#ifndef SDG_GRAPH_ALLOCATION_H_
#define SDG_GRAPH_ALLOCATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/sdg.h"

namespace sdg::graph {

using NodeId = uint32_t;

struct Allocation {
  // Home node of each SE / TE (indexed by id). Runtime instance scaling may
  // later place additional instances elsewhere.
  std::vector<NodeId> state_nodes;
  std::vector<NodeId> task_nodes;
  uint32_t num_nodes = 0;

  std::string ToString(const Sdg& g) const;
};

// Maps every element of `g` onto `num_nodes` simulated nodes. Fails if
// num_nodes == 0. With fewer nodes than elements, placement wraps round-robin
// (the paper's strategy degrades the same way on small clusters).
Result<Allocation> AllocateSdg(const Sdg& g, uint32_t num_nodes);

}  // namespace sdg::graph

#endif  // SDG_GRAPH_ALLOCATION_H_
