// The stateful dataflow graph (SDG) model of §3.
//
// An SDG is a cyclic graph with two vertex kinds — task elements (TEs) that
// transform dataflows, and state elements (SEs) holding mutable state — plus
// two edge kinds: access edges (TE -> SE; a partial function, each TE touches
// at most one SE) and dataflow edges (TE -> TE) carrying data items with one
// of four dispatching semantics. SEs are distributed either by partitioning
// (disjoint splits addressed by an access key) or as partial instances
// (independent replicas, readable globally and reconciled by a merge TE).
#ifndef SDG_GRAPH_SDG_H_
#define SDG_GRAPH_SDG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/state/state_backend.h"

namespace sdg::graph {

using TaskId = uint32_t;
using StateId = uint32_t;

// How an SE is distributed across nodes (§3.2, Fig. 2).
enum class StateDistribution {
  kSingle,       // one instance
  kPartitioned,  // disjoint splits, addressed by an access key
  kPartial,      // independent replicas, merged on global access
};

// How a TE accesses its SE (derived from the program annotations, §4.1).
enum class AccessMode {
  kNone,         // stateless TE
  kLocal,        // the single / local-partial instance
  kPartitioned,  // one partition selected by the dataflow key
  kGlobal,       // all partial instances (one-to-all upstream dispatch)
};

// Dispatching semantics of a dataflow edge (§4.2, step 4).
enum class Dispatch {
  kPartitioned,  // hash the key field, route to instance hash % n
  kOneToAny,     // load balance (round-robin)
  kOneToAll,     // broadcast to every downstream instance
  kAllToOne,     // synchronisation barrier gathering into one instance
};

std::string_view StateDistributionName(StateDistribution d);
std::string_view AccessModeName(AccessMode m);
std::string_view DispatchName(Dispatch d);

// Runtime-provided context handed to task functions. Lives in graph so task
// logic can be attached to the graph without depending on the runtime.
class TaskContext {
 public:
  virtual ~TaskContext() = default;

  // The TE's single SE instance on this node, or nullptr for stateless TEs.
  virtual state::StateBackend* state() = 0;

  // Sends `tuple` along the TE's `output`-th outgoing dataflow edge.
  virtual void Emit(size_t output, Tuple tuple) = 0;

  // This TE instance's index and the current instance count of its TE.
  virtual uint32_t instance_id() const = 0;
  virtual uint32_t num_instances() const = 0;
};

// Transforms one input data item. Pipelined: called per item, may Emit any
// number of outputs.
using TaskFn = std::function<void(const Tuple& input, TaskContext& ctx)>;

// A merge TE's logic: receives the gathered partial results of one barrier
// (one tuple per upstream instance, §3.2 "merge computation").
using CollectorFn =
    std::function<void(const std::vector<Tuple>& partials, TaskContext& ctx)>;

struct StateElement {
  StateId id = 0;
  std::string name;
  StateDistribution distribution = StateDistribution::kSingle;
  state::StateFactory factory;
};

struct TaskElement {
  TaskId id = 0;
  std::string name;
  TaskFn fn;                  // exactly one of fn / collector is set
  CollectorFn collector;
  std::optional<StateId> state;  // the access edge (at most one per TE)
  AccessMode access = AccessMode::kNone;
  bool is_entry = false;      // external injection point (program entry, rule 1)
  // For entry TEs with partitioned state access: which tuple field carries
  // the partition key at injection.
  int entry_key_field = 0;
  uint32_t initial_instances = 1;

  bool is_collector() const { return static_cast<bool>(collector); }
};

struct DataflowEdge {
  TaskId from = 0;
  TaskId to = 0;
  Dispatch dispatch = Dispatch::kOneToAny;
  // For kPartitioned dispatch: index of the key field within the tuple.
  int key_field = -1;
};

// The immutable graph handed to the runtime. Build via SdgBuilder.
class Sdg {
 public:
  const std::vector<TaskElement>& tasks() const { return tasks_; }
  const std::vector<StateElement>& states() const { return states_; }
  const std::vector<DataflowEdge>& edges() const { return edges_; }

  const TaskElement& task(TaskId id) const { return tasks_.at(id); }
  const StateElement& state(StateId id) const { return states_.at(id); }

  Result<TaskId> TaskByName(std::string_view name) const;
  Result<StateId> StateByName(std::string_view name) const;

  // Outgoing dataflow edges of `id`, in insertion order (the Emit index
  // used by task functions follows this order).
  std::vector<const DataflowEdge*> OutEdges(TaskId id) const;
  std::vector<const DataflowEdge*> InEdges(TaskId id) const;

  // TE ids that form part of at least one dataflow cycle (iteration, §3.1).
  std::vector<TaskId> TasksOnCycles() const;

  // Structural checks: one-SE-per-TE is enforced by construction; this
  // verifies dispatch/access compatibility (§3.2) and entry/collector rules.
  Status Validate() const;

  std::string ToDot() const;  // Graphviz rendering for docs and debugging

 private:
  friend class SdgBuilder;

  std::vector<TaskElement> tasks_;
  std::vector<StateElement> states_;
  std::vector<DataflowEdge> edges_;
};

// Fluent construction of SDGs. Example (the Fig. 1 CF graph):
//
//   SdgBuilder b;
//   auto user_item = b.AddState("userItem", StateDistribution::kPartitioned,
//                               [] { return std::make_unique<SparseMatrix>(); });
//   auto update = b.AddEntryTask("updateUserItem", update_fn);
//   b.SetAccess(update, user_item, AccessMode::kPartitioned);
//   b.Connect(update, next, Dispatch::kPartitioned, /*key_field=*/0);
//   auto g = std::move(b).Build();   // validates
class SdgBuilder {
 public:
  StateId AddState(std::string name, StateDistribution distribution,
                   state::StateFactory factory);

  TaskId AddTask(std::string name, TaskFn fn);
  TaskId AddEntryTask(std::string name, TaskFn fn);
  // A merge TE gathering all-to-one barriers (§3.2).
  TaskId AddCollectorTask(std::string name, CollectorFn fn);

  // Declares the TE's access edge. A TE may access at most one SE; a second
  // call for the same TE fails.
  Status SetAccess(TaskId task, StateId state, AccessMode mode);

  Status Connect(TaskId from, TaskId to, Dispatch dispatch, int key_field = -1);

  void SetInitialInstances(TaskId task, uint32_t n);
  void SetEntryKeyField(TaskId task, int field);

  // Validates and returns the graph; fails with the first structural error.
  Result<Sdg> Build() &&;

 private:
  Sdg g_;
};

}  // namespace sdg::graph

#endif  // SDG_GRAPH_SDG_H_
