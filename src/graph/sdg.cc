#include "src/graph/sdg.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace sdg::graph {

std::string_view StateDistributionName(StateDistribution d) {
  switch (d) {
    case StateDistribution::kSingle:
      return "single";
    case StateDistribution::kPartitioned:
      return "partitioned";
    case StateDistribution::kPartial:
      return "partial";
  }
  return "?";
}

std::string_view AccessModeName(AccessMode m) {
  switch (m) {
    case AccessMode::kNone:
      return "none";
    case AccessMode::kLocal:
      return "local";
    case AccessMode::kPartitioned:
      return "partitioned";
    case AccessMode::kGlobal:
      return "global";
  }
  return "?";
}

std::string_view DispatchName(Dispatch d) {
  switch (d) {
    case Dispatch::kPartitioned:
      return "partitioned";
    case Dispatch::kOneToAny:
      return "one-to-any";
    case Dispatch::kOneToAll:
      return "one-to-all";
    case Dispatch::kAllToOne:
      return "all-to-one";
  }
  return "?";
}

Result<TaskId> Sdg::TaskByName(std::string_view name) const {
  for (const auto& t : tasks_) {
    if (t.name == name) {
      return t.id;
    }
  }
  return NotFoundError("no task element named '" + std::string(name) + "'");
}

Result<StateId> Sdg::StateByName(std::string_view name) const {
  for (const auto& s : states_) {
    if (s.name == name) {
      return s.id;
    }
  }
  return NotFoundError("no state element named '" + std::string(name) + "'");
}

std::vector<const DataflowEdge*> Sdg::OutEdges(TaskId id) const {
  std::vector<const DataflowEdge*> out;
  for (const auto& e : edges_) {
    if (e.from == id) {
      out.push_back(&e);
    }
  }
  return out;
}

std::vector<const DataflowEdge*> Sdg::InEdges(TaskId id) const {
  std::vector<const DataflowEdge*> in;
  for (const auto& e : edges_) {
    if (e.to == id) {
      in.push_back(&e);
    }
  }
  return in;
}

std::vector<TaskId> Sdg::TasksOnCycles() const {
  // A TE lies on a cycle iff it is reachable from one of its own successors.
  // With the small graphs SDGs describe, an O(V * E) reachability sweep is
  // plenty.
  std::vector<TaskId> result;
  for (const auto& t : tasks_) {
    std::set<TaskId> visited;
    std::vector<TaskId> frontier;
    for (const auto* e : OutEdges(t.id)) {
      frontier.push_back(e->to);
    }
    bool on_cycle = false;
    while (!frontier.empty() && !on_cycle) {
      TaskId cur = frontier.back();
      frontier.pop_back();
      if (cur == t.id) {
        on_cycle = true;
        break;
      }
      if (!visited.insert(cur).second) {
        continue;
      }
      for (const auto* e : OutEdges(cur)) {
        frontier.push_back(e->to);
      }
    }
    if (on_cycle) {
      result.push_back(t.id);
    }
  }
  return result;
}

Status Sdg::Validate() const {
  if (tasks_.empty()) {
    return InvalidArgumentError("SDG has no task elements");
  }
  bool has_entry = false;
  for (const auto& t : tasks_) {
    if (t.is_entry) {
      has_entry = true;
    }
    if (!t.fn && !t.collector) {
      return InvalidArgumentError("task '" + t.name + "' has no function");
    }
    if (t.fn && t.collector) {
      return InvalidArgumentError("task '" + t.name +
                                  "' has both a task and a collector function");
    }
    if (t.state.has_value()) {
      if (*t.state >= states_.size()) {
        return InvalidArgumentError("task '" + t.name +
                                    "' references unknown state element");
      }
      const auto& se = states_[*t.state];
      // Access mode must be consistent with the SE's distribution.
      switch (t.access) {
        case AccessMode::kNone:
          return InvalidArgumentError("task '" + t.name +
                                      "' has an access edge but mode 'none'");
        case AccessMode::kLocal:
          if (se.distribution == StateDistribution::kPartitioned) {
            return InvalidArgumentError(
                "task '" + t.name + "' uses local access to partitioned SE '" +
                se.name + "'; partitioned SEs require an access key");
          }
          break;
        case AccessMode::kPartitioned:
          if (se.distribution != StateDistribution::kPartitioned) {
            return InvalidArgumentError("task '" + t.name +
                                        "' uses partitioned access to non-"
                                        "partitioned SE '" + se.name + "'");
          }
          break;
        case AccessMode::kGlobal:
          if (se.distribution != StateDistribution::kPartial) {
            return InvalidArgumentError(
                "task '" + t.name + "' uses global access to SE '" + se.name +
                "' which is not partial");
          }
          break;
      }
    } else if (t.access != AccessMode::kNone) {
      return InvalidArgumentError("task '" + t.name +
                                  "' declares state access but no SE");
    }
    if (t.initial_instances == 0) {
      return InvalidArgumentError("task '" + t.name +
                                  "' must have at least one instance");
    }
  }
  if (!has_entry) {
    return InvalidArgumentError("SDG has no entry task element");
  }

  for (const auto& e : edges_) {
    if (e.from >= tasks_.size() || e.to >= tasks_.size()) {
      return InvalidArgumentError("dataflow edge references unknown task");
    }
    const auto& to = tasks_[e.to];
    if (e.dispatch == Dispatch::kPartitioned && e.key_field < 0) {
      return InvalidArgumentError("partitioned dataflow edge into '" + to.name +
                                  "' is missing its key field");
    }
    // A TE with partitioned state access must receive key-partitioned
    // dataflows so that data and state partitions align (§3.2: "the dataflow
    // partitioning strategy must be compatible with the data access
    // pattern").
    if (to.access == AccessMode::kPartitioned &&
        e.dispatch != Dispatch::kPartitioned) {
      return InvalidArgumentError(
          "task '" + to.name +
          "' accesses a partitioned SE but its input dataflow from '" +
          tasks_[e.from].name + "' uses " + std::string(DispatchName(e.dispatch)) +
          " dispatch instead of key partitioning");
    }
    // Collector TEs implement the all-to-one synchronisation barrier.
    if (to.is_collector() && e.dispatch != Dispatch::kAllToOne) {
      return InvalidArgumentError("collector task '" + to.name +
                                  "' requires all-to-one dispatch on edge from '" +
                                  tasks_[e.from].name + "'");
    }
    if (!to.is_collector() && e.dispatch == Dispatch::kAllToOne) {
      return InvalidArgumentError("all-to-one edge into '" + to.name +
                                  "' requires a collector task");
    }
  }

  // Entry TEs must be injectable: no dataflow may target an entry TE with
  // dispatch that conflicts with injection (cycles back into entries are
  // permitted for iterative algorithms).
  // Partitioned SEs accessed by several TEs must agree on one partitioning
  // strategy; with hash partitioning on a single key field this reduces to
  // each accessor receiving key-partitioned input, checked above.
  return Status::Ok();
}

std::string Sdg::ToDot() const {
  std::ostringstream os;
  os << "digraph sdg {\n  rankdir=LR;\n";
  for (const auto& t : tasks_) {
    os << "  t" << t.id << " [shape=box,label=\"" << t.name << "\"];\n";
  }
  for (const auto& s : states_) {
    os << "  s" << s.id << " [shape=ellipse,style=filled,fillcolor=lightgrey,label=\""
       << s.name << "\\n(" << StateDistributionName(s.distribution) << ")\"];\n";
  }
  for (const auto& t : tasks_) {
    if (t.state.has_value()) {
      os << "  t" << t.id << " -> s" << *t.state << " [style=dashed,label=\""
         << AccessModeName(t.access) << "\"];\n";
    }
  }
  for (const auto& e : edges_) {
    os << "  t" << e.from << " -> t" << e.to << " [label=\""
       << DispatchName(e.dispatch) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

StateId SdgBuilder::AddState(std::string name, StateDistribution distribution,
                             state::StateFactory factory) {
  StateElement se;
  se.id = static_cast<StateId>(g_.states_.size());
  se.name = std::move(name);
  se.distribution = distribution;
  se.factory = std::move(factory);
  g_.states_.push_back(std::move(se));
  return g_.states_.back().id;
}

TaskId SdgBuilder::AddTask(std::string name, TaskFn fn) {
  TaskElement te;
  te.id = static_cast<TaskId>(g_.tasks_.size());
  te.name = std::move(name);
  te.fn = std::move(fn);
  g_.tasks_.push_back(std::move(te));
  return g_.tasks_.back().id;
}

TaskId SdgBuilder::AddEntryTask(std::string name, TaskFn fn) {
  TaskId id = AddTask(std::move(name), std::move(fn));
  g_.tasks_[id].is_entry = true;
  return id;
}

TaskId SdgBuilder::AddCollectorTask(std::string name, CollectorFn fn) {
  TaskElement te;
  te.id = static_cast<TaskId>(g_.tasks_.size());
  te.name = std::move(name);
  te.collector = std::move(fn);
  g_.tasks_.push_back(std::move(te));
  return g_.tasks_.back().id;
}

Status SdgBuilder::SetAccess(TaskId task, StateId state, AccessMode mode) {
  if (task >= g_.tasks_.size()) {
    return InvalidArgumentError("unknown task id");
  }
  if (state >= g_.states_.size()) {
    return InvalidArgumentError("unknown state id");
  }
  auto& te = g_.tasks_[task];
  if (te.state.has_value() && *te.state != state) {
    // The access relation is a partial function (§3.1): a TE accessing two
    // SEs must be split into two TEs by the translator.
    return FailedPreconditionError("task '" + te.name +
                                   "' already accesses a different SE; each TE "
                                   "may access at most one SE");
  }
  te.state = state;
  te.access = mode;
  return Status::Ok();
}

Status SdgBuilder::Connect(TaskId from, TaskId to, Dispatch dispatch,
                           int key_field) {
  if (from >= g_.tasks_.size() || to >= g_.tasks_.size()) {
    return InvalidArgumentError("unknown task id in dataflow edge");
  }
  DataflowEdge e;
  e.from = from;
  e.to = to;
  e.dispatch = dispatch;
  e.key_field = key_field;
  g_.edges_.push_back(e);
  return Status::Ok();
}

void SdgBuilder::SetInitialInstances(TaskId task, uint32_t n) {
  if (task < g_.tasks_.size()) {
    g_.tasks_[task].initial_instances = n;
  }
}

void SdgBuilder::SetEntryKeyField(TaskId task, int field) {
  if (task < g_.tasks_.size()) {
    g_.tasks_[task].entry_key_field = field;
  }
}

Result<Sdg> SdgBuilder::Build() && {
  SDG_RETURN_IF_ERROR(g_.Validate());
  return std::move(g_);
}

}  // namespace sdg::graph
