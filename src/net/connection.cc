#include "src/net/connection.h"

#include <chrono>
#include <utility>

namespace sdg::net {

namespace {
// Bound on the Close() drain wait. A healthy link flushes a full send buffer
// in far less; a peer that stopped reading should not wedge shutdown.
constexpr auto kCloseDrainDeadline = std::chrono::seconds(5);

// Iovec segments per writev batch (each staged frame contributes up to two:
// inline header + payload). Well under IOV_MAX; the flush loop keeps going
// while the kernel accepts bytes, so this only chunks a very deep queue.
constexpr int kMaxIovSegments = 64;
}  // namespace

Connection::Connection(Socket socket, Options options, FrameFn on_frame,
                       ErrorFn on_error, FrameDecoder carry)
    : socket_(std::move(socket)),
      fd_(socket_.fd()),
      options_(options),
      on_frame_(std::move(on_frame)),
      on_error_(std::move(on_error)),
      decoder_(std::move(carry)),
      read_buf_(options.read_buffer_bytes < 512 ? 512
                                                : options.read_buffer_bytes),
      send_queue_(options.send_queue_frames < 1 ? 1
                                                : options.send_queue_frames) {
  if (options_.mux_frames) {
    decoder_.EnableMux();
  }
  if (options_.loop != nullptr) {
    Status s = socket_.SetNonBlocking(true);
    if (s.ok()) {
      s = options_.loop->Register(fd_, this, /*want_read=*/true,
                                  /*want_write=*/false);
    }
    if (!s.ok()) {
      Fail(s);
    }
  } else {
    writer_ = std::thread([this] { WriterLoop(); });
    reader_ = std::thread([this] { ReaderLoop(); });
  }
}

Connection::~Connection() { Close(); }

bool Connection::EnqueueLocked(std::unique_lock<std::mutex>& lock,
                               SendEntry entry, bool may_block) {
  if (may_block) {
    send_cv_.wait(lock, [&] {
      return send_q_.size() < options_.send_queue_frames ||
             broken_.load(std::memory_order_acquire) ||
             closed_.load(std::memory_order_acquire);
    });
  }
  if (send_q_.size() >= options_.send_queue_frames ||
      broken_.load(std::memory_order_acquire) ||
      closed_.load(std::memory_order_acquire)) {
    return false;
  }
  if (entry.size() == 0) {
    return true;  // nothing to put on the wire
  }
  send_q_.push_back(std::move(entry));
  // Inline flush from the caller's thread: on an idle socket the frame goes
  // straight to the kernel with no epoll round-trip (the small-batch latency
  // win). If EPOLLOUT is already armed the loop thread owns the drain.
  if (!write_armed_) {
    if (!FlushLocked(lock)) {
      return false;  // lock released, Fail() ran
    }
    // The flush may have freed queue slots with EPOLLOUT left unarmed — wake
    // senders blocked on capacity or OnWritable would never do it for them.
    send_cv_.notify_all();
  }
  return true;
}

bool Connection::Send(std::vector<uint8_t> frame_bytes) {
  if (broken_.load(std::memory_order_acquire) ||
      closed_.load(std::memory_order_acquire)) {
    return false;
  }
  if (options_.loop != nullptr) {
    SendEntry entry;
    entry.payload = std::move(frame_bytes);
    std::unique_lock<std::mutex> lock(send_mu_);
    return EnqueueLocked(lock, std::move(entry), /*may_block=*/true);
  }
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    ++pending_frames_;
  }
  if (!send_queue_.Push(std::move(frame_bytes))) {
    std::lock_guard<std::mutex> lock(flush_mu_);
    --pending_frames_;
    flush_cv_.notify_all();
    return false;
  }
  return true;
}

bool Connection::TrySend(const std::vector<uint8_t>& frame_bytes) {
  if (broken_.load(std::memory_order_acquire) ||
      closed_.load(std::memory_order_acquire)) {
    return false;
  }
  if (options_.loop != nullptr) {
    SendEntry entry;
    entry.payload = frame_bytes;
    std::unique_lock<std::mutex> lock(send_mu_);
    return EnqueueLocked(lock, std::move(entry), /*may_block=*/false);
  }
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    ++pending_frames_;
  }
  if (!send_queue_.TryPush(frame_bytes)) {
    std::lock_guard<std::mutex> lock(flush_mu_);
    --pending_frames_;
    flush_cv_.notify_all();
    return false;
  }
  return true;
}

bool Connection::SendFrame(FrameType type, uint32_t stream,
                           std::vector<uint8_t> payload) {
  if (broken_.load(std::memory_order_acquire) ||
      closed_.load(std::memory_order_acquire)) {
    return false;
  }
  if (options_.loop != nullptr) {
    SendEntry entry;
    entry.header_len = static_cast<uint8_t>(EncodeFrameHeader(
        entry.header, type, stream, payload.size(), options_.mux_frames));
    entry.payload = std::move(payload);
    std::unique_lock<std::mutex> lock(send_mu_);
    return EnqueueLocked(lock, std::move(entry), /*may_block=*/true);
  }
  // Threaded mode keeps the copy-per-frame baseline path.
  uint8_t header[16];
  size_t hl =
      EncodeFrameHeader(header, type, stream, payload.size(), options_.mux_frames);
  std::vector<uint8_t> bytes;
  bytes.reserve(hl + payload.size());
  bytes.insert(bytes.end(), header, header + hl);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return Send(std::move(bytes));
}

bool Connection::TrySendFrame(FrameType type, uint32_t stream,
                              const std::vector<uint8_t>& payload) {
  if (broken_.load(std::memory_order_acquire) ||
      closed_.load(std::memory_order_acquire)) {
    return false;
  }
  if (options_.loop != nullptr) {
    SendEntry entry;
    entry.header_len = static_cast<uint8_t>(EncodeFrameHeader(
        entry.header, type, stream, payload.size(), options_.mux_frames));
    entry.payload = payload;
    std::unique_lock<std::mutex> lock(send_mu_);
    return EnqueueLocked(lock, std::move(entry), /*may_block=*/false);
  }
  uint8_t header[16];
  size_t hl =
      EncodeFrameHeader(header, type, stream, payload.size(), options_.mux_frames);
  std::vector<uint8_t> bytes;
  bytes.reserve(hl + payload.size());
  bytes.insert(bytes.end(), header, header + hl);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return TrySend(bytes);
}

void Connection::SetReadInterest(bool want_read) {
  if (options_.loop == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(send_mu_);
  if (want_read_ == want_read || broken_.load(std::memory_order_acquire) ||
      closed_.load(std::memory_order_acquire)) {
    return;
  }
  want_read_ = want_read;
  options_.loop->UpdateEvents(fd_, want_read_, write_armed_);
}

void Connection::Fail(const Status& status) {
  broken_.store(true, std::memory_order_release);
  if (options_.loop != nullptr) {
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      send_q_.clear();
      send_offset_ = 0;
    }
    send_cv_.notify_all();
  } else {
    // Drop queued frames and unblock Send callers; unacked items live on in
    // the sender's OutputBuffer, so nothing is lost by discarding the queue.
    size_t dropped = send_queue_.Abort();
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      pending_frames_ -= dropped;
    }
  }
  flush_cv_.notify_all();  // Close's drain wait also watches broken_
  socket_.ShutdownBoth();
  if (!error_fired_.exchange(true) && on_error_) {
    on_error_(status);
  }
}

void Connection::DispatchDecoded() {
  for (;;) {
    Frame frame;
    auto more = decoder_.Next(&frame);
    if (!more.ok()) {
      Fail(more.status());
      return;
    }
    if (!*more) {
      return;
    }
    if (on_frame_) {
      on_frame_(std::move(frame));
    }
  }
}

void Connection::OnReadable() {
  for (;;) {
    auto n = socket_.TryRead(read_buf_.data(), read_buf_.size());
    if (!n.ok()) {
      Fail(n.status());
      return;
    }
    if (*n == Socket::kWouldBlock) {
      return;
    }
    if (*n == 0) {
      Fail(UnavailableError("peer closed the connection"));
      return;
    }
    decoder_.Feed(read_buf_.data(), *n);
    DispatchDecoded();
    if (broken_.load(std::memory_order_acquire)) {
      return;
    }
  }
}

bool Connection::FlushLocked(std::unique_lock<std::mutex>& lock) {
  while (!send_q_.empty()) {
    // Gather the queue head into one iovec batch: header and payload of each
    // staged frame by reference, the partially-written front offset skipped.
    struct iovec iov[kMaxIovSegments];
    int iovcnt = 0;
    size_t skip = send_offset_;
    for (const SendEntry& e : send_q_) {
      if (iovcnt + 2 > kMaxIovSegments) {
        break;
      }
      if (skip < e.header_len) {
        iov[iovcnt].iov_base = const_cast<uint8_t*>(e.header) + skip;
        iov[iovcnt].iov_len = e.header_len - skip;
        ++iovcnt;
        skip = 0;
      } else {
        skip -= e.header_len;
      }
      if (skip < e.payload.size()) {
        iov[iovcnt].iov_base = const_cast<uint8_t*>(e.payload.data()) + skip;
        iov[iovcnt].iov_len = e.payload.size() - skip;
        ++iovcnt;
        skip = 0;
      } else {
        skip -= e.payload.size();
      }
    }
    auto n = socket_.TryWritev(iov, iovcnt);
    if (!n.ok()) {
      lock.unlock();
      Fail(n.status());
      return false;
    }
    if (*n == 0) {
      break;  // kernel buffer full; leave the residual for EPOLLOUT
    }
    send_offset_ += *n;
    while (!send_q_.empty() && send_offset_ >= send_q_.front().size()) {
      send_offset_ -= send_q_.front().size();
      send_q_.pop_front();
    }
  }
  const bool want_write = !send_q_.empty();
  if (write_armed_ != want_write) {
    write_armed_ = want_write;
    options_.loop->UpdateEvents(fd_, want_read_, want_write);
  }
  return true;
}

void Connection::OnWritable() {
  std::unique_lock<std::mutex> lock(send_mu_);
  if (!FlushLocked(lock)) {
    return;  // lock released, Fail() ran
  }
  lock.unlock();
  send_cv_.notify_all();
}

void Connection::OnError() { Fail(UnavailableError("socket error (EPOLLERR)")); }

void Connection::WriterLoop() {
  for (;;) {
    auto frame = send_queue_.Pop();
    if (!frame.has_value()) {
      return;  // closed (orderly) or aborted (failure)
    }
    Status s = socket_.WriteAll(frame->data(), frame->size());
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      --pending_frames_;
    }
    flush_cv_.notify_all();
    if (!s.ok()) {
      Fail(s);
      return;
    }
  }
}

void Connection::ReaderLoop() {
  std::vector<uint8_t> buf(options_.read_buffer_bytes);
  for (;;) {
    auto n = socket_.ReadSome(buf.data(), buf.size());
    if (!n.ok()) {
      Fail(n.status());
      return;
    }
    if (*n == 0) {
      Fail(UnavailableError("peer closed the connection"));
      return;
    }
    decoder_.Feed(buf.data(), *n);
    DispatchDecoded();
    if (broken_.load(std::memory_order_acquire)) {
      return;
    }
  }
}

void Connection::Close() {
  if (closed_.exchange(true)) {
    return;
  }
  if (options_.loop != nullptr) {
    // Drain: let the loop flush frames Send already accepted. A broken link
    // (or a peer that stopped reading, bounded by the deadline) skips ahead.
    {
      std::unique_lock<std::mutex> lock(send_mu_);
      send_cv_.wait_for(lock, kCloseDrainDeadline, [&] {
        return send_q_.empty() || broken_.load(std::memory_order_acquire);
      });
    }
    send_cv_.notify_all();  // release Send callers blocked on capacity
    options_.loop->Deregister(fd_);  // waits out any in-flight callback
    broken_.store(true, std::memory_order_release);
    socket_.ShutdownBoth();
    socket_.Close();
    return;
  }
  // Threaded mode: wait for the writer to put accepted frames on the wire
  // before cutting — a sender that calls Close right after its last Send
  // must not lose it. Failure paths (broken_) cut immediately, and the
  // deadline bounds a peer that stopped reading.
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    flush_cv_.wait_for(lock, kCloseDrainDeadline, [&] {
      return pending_frames_ == 0 || broken_.load(std::memory_order_acquire);
    });
  }
  broken_.store(true, std::memory_order_release);
  send_queue_.Abort();
  socket_.ShutdownBoth();
  if (writer_.joinable()) {
    writer_.join();
  }
  if (reader_.joinable()) {
    reader_.join();
  }
  socket_.Close();
}

Result<Frame> ReadFrameBlocking(Socket& socket, FrameDecoder& decoder) {
  uint8_t buf[4096];
  for (;;) {
    Frame frame;
    SDG_ASSIGN_OR_RETURN(bool ready, decoder.Next(&frame));
    if (ready) {
      return frame;
    }
    SDG_ASSIGN_OR_RETURN(size_t n, socket.ReadSome(buf, sizeof(buf)));
    if (n == 0) {
      return UnavailableError("peer closed during handshake");
    }
    decoder.Feed(buf, n);
  }
}

Status WriteFrameBlocking(Socket& socket, FrameType type,
                          const std::vector<uint8_t>& payload) {
  BinaryWriter w;
  EncodeFrame(w, type, payload.data(), payload.size());
  return socket.WriteAll(w.data(), w.size());
}

}  // namespace sdg::net
