#include "src/net/connection.h"

#include <utility>

namespace sdg::net {

Connection::Connection(Socket socket, Options options, FrameFn on_frame,
                       ErrorFn on_error, FrameDecoder carry)
    : socket_(std::move(socket)),
      options_(options),
      on_frame_(std::move(on_frame)),
      on_error_(std::move(on_error)),
      decoder_(std::move(carry)),
      send_queue_(options.send_queue_frames < 1 ? 1
                                                : options.send_queue_frames) {
  writer_ = std::thread([this] { WriterLoop(); });
  reader_ = std::thread([this] { ReaderLoop(); });
}

Connection::~Connection() { Close(); }

bool Connection::Send(std::vector<uint8_t> frame_bytes) {
  if (broken_.load(std::memory_order_acquire)) {
    return false;
  }
  return send_queue_.Push(std::move(frame_bytes));
}

bool Connection::TrySend(const std::vector<uint8_t>& frame_bytes) {
  if (broken_.load(std::memory_order_acquire)) {
    return false;
  }
  return send_queue_.TryPush(frame_bytes);
}

void Connection::Fail(const Status& status) {
  broken_.store(true, std::memory_order_release);
  // Drop queued frames and unblock Send callers; unacked items live on in
  // the sender's OutputBuffer, so nothing is lost by discarding the queue.
  send_queue_.Abort();
  socket_.ShutdownBoth();
  if (!error_fired_.exchange(true) && on_error_) {
    on_error_(status);
  }
}

void Connection::WriterLoop() {
  for (;;) {
    auto frame = send_queue_.Pop();
    if (!frame.has_value()) {
      return;  // closed (orderly) or aborted (failure)
    }
    Status s = socket_.WriteAll(frame->data(), frame->size());
    if (!s.ok()) {
      Fail(s);
      return;
    }
  }
}

void Connection::ReaderLoop() {
  std::vector<uint8_t> buf(options_.read_buffer_bytes);
  for (;;) {
    auto n = socket_.ReadSome(buf.data(), buf.size());
    if (!n.ok()) {
      Fail(n.status());
      return;
    }
    if (*n == 0) {
      Fail(UnavailableError("peer closed the connection"));
      return;
    }
    decoder_.Feed(buf.data(), *n);
    for (;;) {
      Frame frame;
      auto more = decoder_.Next(&frame);
      if (!more.ok()) {
        Fail(more.status());
        return;
      }
      if (!*more) {
        break;
      }
      if (on_frame_) {
        on_frame_(std::move(frame));
      }
    }
  }
}

void Connection::Close() {
  if (closed_.exchange(true)) {
    // Another closer already ran; still make join idempotent for that first
    // caller only (threads joined below exactly once).
    return;
  }
  // Mark broken first so no new Send enqueues after the queue closes, then
  // let the writer drain what it already accepted before cutting the socket?
  // No: Close is also the failure path's last resort — cut immediately. A
  // caller wanting a clean flush sends, waits for acks, then closes.
  broken_.store(true, std::memory_order_release);
  send_queue_.Abort();
  socket_.ShutdownBoth();
  if (writer_.joinable()) {
    writer_.join();
  }
  if (reader_.joinable()) {
    reader_.join();
  }
  socket_.Close();
}

Result<Frame> ReadFrameBlocking(Socket& socket, FrameDecoder& decoder) {
  uint8_t buf[4096];
  for (;;) {
    Frame frame;
    SDG_ASSIGN_OR_RETURN(bool ready, decoder.Next(&frame));
    if (ready) {
      return frame;
    }
    SDG_ASSIGN_OR_RETURN(size_t n, socket.ReadSome(buf, sizeof(buf)));
    if (n == 0) {
      return UnavailableError("peer closed during handshake");
    }
    decoder.Feed(buf, n);
  }
}

Status WriteFrameBlocking(Socket& socket, FrameType type,
                          const std::vector<uint8_t>& payload) {
  BinaryWriter w;
  EncodeFrame(w, type, payload.data(), payload.size());
  return socket.WriteAll(w.data(), w.size());
}

}  // namespace sdg::net
