// EventLoop: one epoll(7) readiness loop multiplexing every nonblocking
// socket in the process — the transport-side counterpart of the runtime
// Executor. Instead of two threads per Connection (reader + writer) and one
// per in-flight accept, a single loop thread waits on all fds at once and
// dispatches readiness callbacks; actual work (frame decode, batch delivery)
// is handed off to the executor so the loop never blocks on user code for
// long.
//
// Threading contract:
//  - All Handler callbacks run on the loop thread, one at a time per fd.
//  - Register/UpdateEvents/Post are safe from any thread.
//  - Deregister blocks until no callback for that fd is in flight (so the
//    caller may free the handler right after), unless called from the loop
//    thread itself — i.e. from inside a callback — where it returns
//    immediately (the in-flight callback is the caller).
//  - Level-triggered: a handler that leaves data unread or a full send queue
//    unarmed will simply be called again on the next epoll_wait.
//
// Spurious wakeups are part of the contract: the fd table is keyed by fd, and
// an fd number can be reused between epoll_wait returning and dispatch, so a
// handler may see OnReadable with nothing to read. TryRead/TryWrite returning
// would-block makes that harmless.
#ifndef SDG_NET_EVENT_LOOP_H_
#define SDG_NET_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/common/status.h"

namespace sdg::net {

class EventLoop {
 public:
  // Readiness callbacks. Default-empty so handlers only override what they
  // subscribe to. OnError fires on EPOLLERR; EPOLLHUP is surfaced through
  // OnReadable (the read path sees EOF and tears down).
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void OnReadable() {}
    virtual void OnWritable() {}
    virtual void OnError() {}
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Process-wide loop (never destroyed). Connections and channel servers
  // default to it so the whole deployment pays for exactly one IO thread.
  static EventLoop* Shared();

  // Adds `fd` to the epoll set. The handler must outlive the registration
  // (i.e. stay valid until Deregister returns).
  Status Register(int fd, Handler* handler, bool want_read, bool want_write);

  // Re-arms the interest set (e.g. enable EPOLLOUT while the send queue is
  // non-empty, drop read interest for backpressure).
  Status UpdateEvents(int fd, bool want_read, bool want_write);

  // Removes `fd` and waits out any in-flight callback for it (no wait when
  // called from the loop thread). After this returns the handler is never
  // called again for this registration.
  void Deregister(int fd);

  // Runs `fn` on the loop thread soon. Used for state only the loop may
  // touch without races.
  void Post(std::function<void()> fn);

  bool InLoopThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

 private:
  void Loop();
  void Wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<int, Handler*> handlers_;
  int dispatching_fd_ = -1;  // fd whose callback is running right now
  std::deque<std::function<void()>> posted_;

  std::thread thread_;  // last member: starts in ctor after the fds exist
};

}  // namespace sdg::net

#endif  // SDG_NET_EVENT_LOOP_H_
