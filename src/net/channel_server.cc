#include "src/net/channel_server.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace sdg::net {

// ---------------------------------------------------------------------------
// PeerDispatch

ChannelServer::PeerDispatch::PeerDispatch(
    ChannelServer* server, Peer* peer, runtime::Executor* executor,
    bool wire_pause, std::function<void(size_t)> on_consumed)
    : server_(server),
      peer_(peer),
      wire_pause_(wire_pause),
      on_consumed_(std::move(on_consumed)) {
  BindExecutor(executor);
}

void ChannelServer::PeerDispatch::PushFrame(Frame frame) {
  bool held;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return;
    }
    held = held_;
    frames_.push_back(std::move(frame));
    if (wire_pause_ && !paused_ && frames_.size() >= kPauseFrames) {
      paused_ = true;
      // Backlog over the high watermark: stop reading this socket. The
      // kernel buffer fills, TCP flow control reaches the sender — wire
      // backpressure. Applied under mu_ so the epoll update can never land
      // after a concurrent RunSlice's resume: reads-off with paused_==false
      // would wedge the peer forever, since only a paused slice resumes.
      // (Safe lock order: Connection never calls into the dispatch while
      // holding its send lock, and UpdateEvents is a non-blocking
      // epoll_ctl.)
      if (Connection* c = conn_.load(std::memory_order_acquire)) {
        c->SetReadInterest(false);
      }
    }
  }
  if (!held) {
    Ready();
  }
}

void ChannelServer::PeerDispatch::Hold() {
  std::lock_guard<std::mutex> lock(mu_);
  held_ = true;
}

void ChannelServer::PeerDispatch::Release() {
  bool any;
  {
    std::lock_guard<std::mutex> lock(mu_);
    held_ = false;
    any = !frames_.empty();
  }
  if (any) {
    Ready();
  }
}

bool ChannelServer::PeerDispatch::RunSlice() {
  std::vector<Frame> batch;
  bool more;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (held_) {
      return false;
    }
    size_t n = std::min(kFramesPerSlice, frames_.size());
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(frames_.front()));
      frames_.pop_front();
    }
    if (paused_ && frames_.size() <= kResumeFrames) {
      paused_ = false;
      // Under mu_ for the same reason as the pause in PushFrame: the
      // interest change must be ordered with the paused_ flip it reflects.
      if (Connection* c = conn_.load(std::memory_order_acquire)) {
        c->SetReadInterest(true);
      }
    }
    more = !frames_.empty();
  }
  for (auto& frame : batch) {
    server_->DispatchPeerFrame(*peer_, std::move(frame));
  }
  if (on_consumed_ != nullptr && !batch.empty()) {
    on_consumed_(batch.size());
  }
  return more;
}

void ChannelServer::PeerDispatch::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  // Frames already handed over are still dispatched (parity with the
  // threaded reader, which delivers what it decoded before the socket cut);
  // anything beyond that is unacked and will be replayed by the sender.
  AwaitIdle();
}

// ---------------------------------------------------------------------------
// ChannelServer

// One decoded frame for any peer kind. Runs on the peer's dispatch entity
// (event-loop mode) or reader thread (threaded mode) — never the epoll loop.
void ChannelServer::DispatchPeerFrame(Peer& peer, Frame frame) {
  if (peer.is_mux) {
    // Mux parent frames never reach here: kMuxOpen is handled on a dedicated
    // thread (see SetupMuxPeer) and everything else routes to a stream.
    return;
  }
  if (peer.is_member) {
    // A mux reply stream: kResponse (etc.) frames take the member-frame
    // route — same handler as the control channel, different wire.
    if (on_member_ != nullptr) {
      on_member_(peer.member_id, std::move(frame));
    }
    return;
  }
  if (peer.is_client) {
    if (frame.type != FrameType::kRequest) {
      return;
    }
    auto req = RequestMsg::Decode(frame.payload);
    if (!req.ok()) {
      SDG_LOG(kWarning) << "dropping malformed request: "
                        << req.status().ToString();
      return;
    }
    std::shared_ptr<const ServeHandlers> serve;
    {
      std::lock_guard<std::mutex> lock(serve_mutex_);
      serve = serve_;
    }
    if (serve == nullptr || serve->on_request == nullptr) {
      // No gateway installed: cut the connection instead of silently eating
      // the request, so the client fails fast and redials a live gateway.
      if (peer.conn != nullptr) {
        peer.conn->Abort(UnavailableError("no serve handler installed"));
      }
      return;
    }
    serve->on_request(peer.client_id, std::move(*req));
    return;
  }
  if (peer.is_feed) {
    if (frame.type != FrameType::kReplicaEpoch) {
      return;
    }
    auto msg = ReplicaEpochMsg::Decode(frame.payload);
    if (!msg.ok()) {
      SDG_LOG(kWarning) << "dropping malformed replica epoch: "
                        << msg.status().ToString();
      return;
    }
    std::shared_ptr<const ServeHandlers> serve;
    {
      std::lock_guard<std::mutex> lock(serve_mutex_);
      serve = serve_;
    }
    if (serve == nullptr || serve->on_feed == nullptr) {
      // Epochs dropped here would desync the publisher's tail from the
      // gateway's replica views (a base eaten now leaves every later delta
      // inapplicable). Cut the link: the worker redials with backoff and
      // replays its tail — base first — once a gateway is listening.
      if (peer.conn != nullptr) {
        peer.conn->Abort(UnavailableError("no serve handler installed"));
      }
      return;
    }
    serve->on_feed(peer.subscribe, std::move(*msg));
    return;
  }
  if (frame.type != FrameType::kData) {
    return;
  }
  auto decoded = DataBatch::Decode(frame.payload);
  if (!decoded.ok()) {
    SDG_LOG(kWarning) << "dropping malformed data batch: "
                      << decoded.status().ToString();
    return;
  }
  on_batch_(peer.handshake, std::move(decoded->items));
}

ChannelServer::ChannelServer(ChannelServerOptions options)
    : options_(options) {}

ChannelServer::~ChannelServer() { Stop(); }

Status ChannelServer::Start(HandshakeFn on_handshake, BatchFn on_batch,
                            JoinFn on_join, MemberFrameFn on_member,
                            MigrationFn on_migration) {
  if (running_.exchange(true)) {
    return FailedPreconditionError("channel server already started");
  }
  on_handshake_ = std::move(on_handshake);
  on_batch_ = std::move(on_batch);
  on_join_ = std::move(on_join);
  on_member_ = std::move(on_member);
  on_migration_ = std::move(on_migration);
  SDG_ASSIGN_OR_RETURN(listener_, Listener::Bind(options_.port));
  port_ = listener_.port();
  if (options_.mode == NetMode::kEventLoop) {
    executor_ = options_.executor != nullptr ? options_.executor
                                             : runtime::Executor::Shared();
    loop_ = options_.loop != nullptr ? options_.loop : EventLoop::Shared();
    SDG_RETURN_IF_ERROR(listener_.SetNonBlocking(true));
    SDG_RETURN_IF_ERROR(loop_->Register(listener_.fd(), this,
                                        /*want_read=*/true,
                                        /*want_write=*/false));
  } else {
    acceptor_ = std::thread([this] { AcceptLoop(); });
  }
  return Status::Ok();
}

// Listener readiness (event-loop mode, loop thread): accept everything
// pending, then hand each handshake to a short-lived setup thread. The
// handshake is deliberately NOT an executor task: it blocks waiting on the
// client, and the client side of a reconnect may itself be an executor task
// blocked waiting on this ack — on a small pool that is a circular wait.
// Setup threads exist only during connection churn, so the steady-state
// thread count stays O(pool size).
void ChannelServer::OnReadable() {
  for (;;) {
    auto sock = listener_.TryAccept();
    if (!sock.ok() || !sock->valid()) {
      return;  // drained (EAGAIN) or listener closed by Stop
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(peers_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    setup_threads_.emplace_back(
        [this, s = std::make_shared<Socket>(std::move(*sock))]() mutable {
          SetupPeer(std::move(*s));
        });
  }
}

void ChannelServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto sock = listener_.Accept();
    if (!sock.ok()) {
      return;  // listener closed (Stop) or fatal accept error
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    // Handshakes run off the acceptor so one slow client cannot delay the
    // next accept.
    std::lock_guard<std::mutex> lock(peers_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    setup_threads_.emplace_back(
        [this, s = std::make_shared<Socket>(std::move(*sock))]() mutable {
          SetupPeer(std::move(*s));
        });
  }
}

void ChannelServer::SetupPeer(Socket socket) {
  // Bound the handshake so a silent client cannot pin this thread (and
  // therefore Stop) indefinitely. Cleared before the data-path regime, where
  // an idle-but-healthy peer is normal.
  socket.SetRecvTimeout(5000);
  FrameDecoder carry;
  auto first = ReadFrameBlocking(socket, carry);
  if (!first.ok()) {
    SDG_LOG(kWarning) << "connection dropped before handshake";
    return;
  }
  // The first frame selects the connection's role: a data handshake (the
  // historical path), a membership join, or an inbound migration session.
  if (first->type == FrameType::kJoin) {
    SetupMember(std::move(socket), std::move(carry), *first);
    return;
  }
  if (first->type == FrameType::kMuxHello) {
    SetupMuxPeer(std::move(socket), std::move(carry), *first);
    return;
  }
  if (first->type == FrameType::kMigrateBegin) {
    auto begin = MigrateBeginMsg::Decode(first->payload);
    if (!begin.ok() || on_migration_ == nullptr) {
      SDG_LOG(kWarning) << "migration session rejected: "
                        << (begin.ok() ? "no handler"
                                       : begin.status().ToString());
      return;
    }
    socket.SetRecvTimeout(0);
    on_migration_(std::move(socket), std::move(carry), *begin);
    return;
  }
  if (first->type == FrameType::kRequest ||
      first->type == FrameType::kReplicaSubscribe) {
    SetupServePeer(std::move(socket), std::move(carry), std::move(*first));
    return;
  }
  if (first->type != FrameType::kHandshake) {
    SDG_LOG(kWarning) << "connection opened with unexpected frame type "
                      << static_cast<int>(first->type);
    return;
  }
  auto hs = Handshake::Decode(first->payload);
  if (!hs.ok()) {
    SDG_LOG(kWarning) << "malformed handshake: " << hs.status().ToString();
    return;
  }

  HandshakeAck ack;
  if (hs->protocol != kProtocolVersion) {
    ack.accepted = false;
    ack.message = "protocol version mismatch";
  } else {
    auto watermark = on_handshake_(*hs);
    if (watermark.ok()) {
      ack.accepted = true;
      ack.acked_ts = *watermark;
    } else {
      ack.accepted = false;
      ack.message = watermark.status().message();
    }
  }
  Status sent = WriteFrameBlocking(socket, FrameType::kHandshakeAck,
                                   ack.Encode());
  if (!sent.ok() || !ack.accepted) {
    return;
  }

  socket.SetRecvTimeout(0);
  auto peer = std::make_shared<Peer>();
  peer->handshake = std::move(*hs);
  Peer* raw = peer.get();
  Connection::Options copts;
  copts.send_queue_frames = options_.send_queue_frames;
  if (options_.mode == NetMode::kEventLoop) {
    peer->dispatch = std::make_unique<PeerDispatch>(this, raw, executor_);
    PeerDispatch* dispatch = peer->dispatch.get();
    copts.loop = loop_;
    peer->conn = std::make_unique<Connection>(
        std::move(socket), copts,
        [dispatch](Frame frame) { dispatch->PushFrame(std::move(frame)); },
        [](const Status&) {
          // A broken inbound connection is routine (sender failover or
          // restart); the peer is reaped on the next Ack/Stop.
        },
        std::move(carry));
    dispatch->SetConnection(peer->conn.get());
  } else {
    peer->conn = std::make_unique<Connection>(
        std::move(socket), copts,
        [this, raw](Frame frame) {
          DispatchPeerFrame(*raw, std::move(frame));
        },
        [](const Status&) {
          // Reaped on the next Ack/Stop, as above.
        },
        std::move(carry));
  }
  std::lock_guard<std::mutex> lock(peers_mutex_);
  if (!running_.load(std::memory_order_acquire)) {
    ClosePeer(*peer);  // raced with Stop — do not install
    return;
  }
  ReapBrokenPeersLocked();
  peers_.push_back(std::move(peer));
}

void ChannelServer::SetupMember(Socket socket, FrameDecoder carry,
                                const Frame& first) {
  auto join = JoinMsg::Decode(first.payload);
  if (!join.ok()) {
    SDG_LOG(kWarning) << "malformed join: " << join.status().ToString();
    return;
  }
  JoinAckMsg ack;
  if (on_join_ == nullptr) {
    ack.accepted = false;
    ack.message = "this deployment accepts no members";
  } else if (join->protocol != kProtocolVersion) {
    ack.accepted = false;
    ack.message = "protocol version mismatch";
  } else {
    auto id = on_join_(*join);
    if (id.ok()) {
      ack.accepted = true;
      ack.member_id = *id;
    } else {
      ack.accepted = false;
      ack.message = id.status().message();
    }
  }
  if (!ack.accepted) {
    (void)WriteFrameBlocking(socket, FrameType::kJoinAck, ack.Encode());
    return;
  }

  socket.SetRecvTimeout(0);
  auto peer = std::make_shared<Peer>();
  peer->is_member = true;
  peer->member_id = ack.member_id;
  const uint32_t member_id = ack.member_id;
  Connection::Options copts;
  copts.send_queue_frames = options_.send_queue_frames;
  if (options_.mode == NetMode::kEventLoop) {
    copts.loop = loop_;
  }
  // Member frames are control replies — rare and small — so both modes route
  // them straight from the IO thread; on_member_ must not block.
  peer->conn = std::make_unique<Connection>(
      std::move(socket), copts,
      [this, member_id](Frame frame) {
        if (on_member_ != nullptr) {
          on_member_(member_id, std::move(frame));
        }
      },
      [](const Status&) {
        // A member restart shows up as a fresh join; reaped on Ack/Stop.
      },
      std::move(carry));
  // Register first, ack second: a member that has read its kJoinAck must
  // already be visible to MemberCount/SendToMember. The ack rides the
  // connection's FIFO send queue under peers_mutex_, so any control frame a
  // concurrent SendToMember enqueues still lands after it on the wire.
  Connection* conn = peer->conn.get();
  std::lock_guard<std::mutex> lock(peers_mutex_);
  if (!running_.load(std::memory_order_acquire)) {
    ClosePeer(*peer);
    return;
  }
  ReapBrokenPeersLocked();
  // A rejoin (same member id, new incarnation) supersedes the old channel.
  for (auto it = peers_.begin(); it != peers_.end();) {
    if ((*it)->is_member && (*it)->member_id == member_id) {
      ClosePeer(**it);
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
  peers_.push_back(std::move(peer));
  BinaryWriter frame;
  const std::vector<uint8_t> payload = ack.Encode();
  EncodeFrame(frame, FrameType::kJoinAck, payload.data(), payload.size());
  (void)conn->Send(frame.buffer());
}

void ChannelServer::SetupMuxPeer(Socket socket, FrameDecoder carry,
                                 const Frame& first) {
  auto hello = MuxHelloMsg::Decode(first.payload);
  MuxHelloAckMsg ack;
  if (!hello.ok()) {
    ack.message = "malformed mux hello";
  } else if (hello->protocol != kProtocolVersionMux) {
    ack.message = "protocol version mismatch";
  } else if (options_.mode != NetMode::kEventLoop) {
    ack.message = "mux requires event-loop mode";
  } else {
    ack.accepted = true;
    ack.window = options_.mux_stream_window;
  }
  Status sent =
      WriteFrameBlocking(socket, FrameType::kMuxHelloAck, ack.Encode());
  if (!sent.ok() || !ack.accepted) {
    return;
  }
  socket.SetRecvTimeout(0);
  auto peer = std::make_shared<Peer>();
  peer->is_mux = true;
  Peer* raw = peer.get();
  Connection::Options copts;
  // Many streams share this socket's staging buffer; fairness comes from the
  // per-stream credit windows, not this bound.
  copts.send_queue_frames = std::max<size_t>(options_.send_queue_frames, 256);
  copts.loop = loop_;
  copts.mux_frames = true;
  std::weak_ptr<Peer> weak = peer;
  peer->conn = std::make_unique<Connection>(
      std::move(socket), copts,
      [this, raw, weak](Frame frame) {
        if (frame.type == FrameType::kMuxOpen) {
          // Opens run on a short-lived dedicated thread, NEVER the shared
          // executor: the opener on the other end may itself be an executor
          // task blocking on the ack, and on a small pool the two would
          // starve each other (the same rule that puts per-channel
          // handshakes on setup threads). ClosePeer waits these out via
          // mux_opens_inflight; the shared_ptr keeps the peer alive for the
          // thread's tail.
          auto sp = weak.lock();
          if (sp == nullptr) {
            return;
          }
          {
            std::lock_guard<std::mutex> lock(sp->mux_mu);
            ++sp->mux_opens_inflight;
          }
          std::thread([this, sp, f = std::move(frame)]() mutable {
            {
              // SetupMuxPeer may still be between constructing the
              // Connection (which registered with the loop and delivered
              // this very frame) and storing it into sp->conn — wait for
              // the assignment before HandleMuxOpen dereferences it.
              std::unique_lock<std::mutex> lock(sp->mux_mu);
              sp->mux_open_cv.wait(lock, [&] { return sp->mux_conn_ready; });
            }
            HandleMuxOpen(*sp, f);
            std::lock_guard<std::mutex> lock(sp->mux_mu);
            --sp->mux_opens_inflight;
            sp->mux_open_cv.notify_all();
          }).detach();
          return;
        }
        RouteMuxFrame(*raw, std::move(frame));
      },
      [](const Status&) {
        // A broken mux peer (sender restart) is reaped on the next Ack/Stop;
        // the dialer's MuxPool drops it and redials.
      },
      std::move(carry));
  {
    std::lock_guard<std::mutex> lock(peer->mux_mu);
    peer->mux_conn_ready = true;
  }
  peer->mux_open_cv.notify_all();
  std::lock_guard<std::mutex> lock(peers_mutex_);
  if (!running_.load(std::memory_order_acquire)) {
    ClosePeer(*peer);
    return;
  }
  ReapBrokenPeersLocked();
  peers_.push_back(std::move(peer));
}

// Loop thread: every non-open frame of a mux connection lands here and
// routes to its stream's own dispatch entity. Frames for an unknown stream
// are dropped — the sender only transmits after its open-ack, so these are
// stale post-supersede frames that the reopen's watermark replay repairs.
void ChannelServer::RouteMuxFrame(Peer& peer, Frame frame) {
  std::shared_ptr<Peer> stream;
  {
    std::lock_guard<std::mutex> lock(peer.mux_mu);
    auto it = peer.streams.find(frame.stream);
    if (it != peer.streams.end()) {
      stream = it->second;
    }
  }
  if (stream == nullptr) {
    return;
  }
  stream->dispatch->PushFrame(std::move(frame));
}

// Dedicated open thread: validate the open, install the stream, ack.
// Install-before-ack so the loop thread can route the sender's first data
// frame (which cannot leave the client before the ack) to a live entity.
void ChannelServer::HandleMuxOpen(Peer& peer, const Frame& frame) {
  const uint32_t stream_id = frame.stream;
  auto open = MuxOpenMsg::Decode(frame.payload);
  MuxOpenAckMsg ack;
  std::shared_ptr<Peer> stream;
  if (!open.ok()) {
    ack.message = "malformed mux open";
  } else if (open->kind == kMuxStreamData) {
    Handshake hs;
    hs.deployment_id = open->deployment_id;
    hs.source_task = open->source_task;
    hs.source_instance = open->source_instance;
    hs.entry = open->entry;
    hs.emit_clock = open->emit_clock;
    if (on_handshake_ == nullptr) {
      ack.message = "no handshake handler";
    } else {
      auto watermark = on_handshake_(hs);
      if (watermark.ok()) {
        ack.accepted = true;
        ack.acked_ts = *watermark;
        stream = std::make_shared<Peer>();
        stream->handshake = std::move(hs);
      } else {
        ack.message = std::string(watermark.status().message());
      }
    }
  } else if (open->kind == kMuxStreamReply) {
    if (on_member_ == nullptr) {
      ack.message = "no member-frame handler";
    } else {
      ack.accepted = true;
      stream = std::make_shared<Peer>();
      stream->is_member = true;
      stream->member_id = open->member_id;
    }
  } else {
    ack.message = "unknown stream kind";
  }
  if (stream != nullptr) {
    ack.window = options_.mux_stream_window;
    stream->mux_stream = stream_id;
    Peer* raw_stream = stream.get();
    Connection* conn = peer.conn.get();
    const uint32_t grant_at =
        std::max<uint32_t>(1, options_.mux_stream_window / 2);
    // Credit grants ride the consumed-frames hook: once the entity has
    // dispatched half a window, hand the credits back. Blocking send — a
    // lost grant would wedge the sender for good (unlike a lost ack, which
    // the next open's watermark repairs).
    auto grant = [raw_stream, conn, stream_id, grant_at](size_t n) {
      raw_stream->mux_consumed += static_cast<uint32_t>(n);
      if (raw_stream->mux_consumed >= grant_at) {
        MuxWindowMsg msg;
        msg.credits = raw_stream->mux_consumed;
        raw_stream->mux_consumed = 0;
        (void)conn->SendFrame(FrameType::kMuxWindow, stream_id, msg.Encode());
      }
    };
    stream->dispatch = std::make_unique<PeerDispatch>(
        this, raw_stream, executor_, /*wire_pause=*/false, std::move(grant));
    std::lock_guard<std::mutex> lock(peer.mux_mu);
    if (stream->is_member == false) {
      // A reopened channel identity (migration flip, sender-side redial on
      // the same socket) supersedes the old stream: stop routing to it, but
      // keep it alive until ClosePeer for in-flight slices.
      for (auto it = peer.streams.begin(); it != peer.streams.end();) {
        const auto& old = *it->second;
        if (!old.is_member &&
            old.handshake.source_task == stream->handshake.source_task &&
            old.handshake.source_instance ==
                stream->handshake.source_instance &&
            old.handshake.entry == stream->handshake.entry) {
          peer.retired_streams.push_back(std::move(it->second));
          it = peer.streams.erase(it);
        } else {
          ++it;
        }
      }
    }
    peer.streams[stream_id] = std::move(stream);
  }
  (void)peer.conn->SendFrame(FrameType::kMuxOpenAck, stream_id, ack.Encode());
}

void ChannelServer::SetupServePeer(Socket socket, FrameDecoder carry,
                                   Frame first) {
  auto peer = std::make_shared<Peer>();
  if (first.type == FrameType::kRequest) {
    peer->is_client = true;
    peer->client_id = next_client_id_.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto sub = ReplicaSubscribeMsg::Decode(first.payload);
    if (!sub.ok()) {
      SDG_LOG(kWarning) << "malformed replica subscribe: "
                        << sub.status().ToString();
      return;
    }
    if (sub->protocol != kProtocolVersion) {
      SDG_LOG(kWarning) << "replica subscribe protocol mismatch";
      return;
    }
    peer->is_feed = true;
    peer->subscribe = std::move(*sub);
  }
  socket.SetRecvTimeout(0);
  Peer* raw = peer.get();
  Connection::Options copts;
  copts.send_queue_frames = options_.send_queue_frames;
  if (peer->is_client) {
    // Responses are tiny and clients pipeline: a deep send queue makes the
    // non-blocking response path lossless for any sane pipeline depth while
    // still bounding what a never-reading client can pin.
    copts.send_queue_frames =
        std::max<size_t>(options_.send_queue_frames, 16384);
  }
  PeerDispatch* dispatch = nullptr;
  bool dispatch_first_after_install = false;
  if (options_.mode == NetMode::kEventLoop) {
    peer->dispatch = std::make_unique<PeerDispatch>(this, raw, executor_);
    dispatch = peer->dispatch.get();
    // Held until the peer is installed in peers_: a handler running off the
    // first request would respond via SendToClient, which scans peers_ —
    // dispatching before installation silently drops that response.
    dispatch->Hold();
    // The first request must keep wire order with whatever the carry decoder
    // already buffered, so it goes through the dispatch before the
    // Connection starts feeding it.
    if (peer->is_client) {
      dispatch->PushFrame(std::move(first));
    }
    copts.loop = loop_;
    peer->conn = std::make_unique<Connection>(
        std::move(socket), copts,
        [dispatch](Frame frame) { dispatch->PushFrame(std::move(frame)); },
        [](const Status&) {
          // Client/feed churn is routine; reaped on the next send/Stop.
        },
        std::move(carry));
    dispatch->SetConnection(peer->conn.get());
  } else {
    // Threaded mode has no dispatch queue to hold, so the first request is
    // dispatched after installation instead. A client awaits the response to
    // its first request before pipelining (Connect is not acked otherwise),
    // so the reader thread has nothing to reorder in front of it.
    dispatch_first_after_install = peer->is_client;
    peer->conn = std::make_unique<Connection>(
        std::move(socket), copts,
        [this, raw](Frame frame) {
          DispatchPeerFrame(*raw, std::move(frame));
        },
        [](const Status&) {},
        std::move(carry));
  }
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      ClosePeer(*peer);
      return;
    }
    ReapBrokenPeersLocked();
    peers_.push_back(peer);
  }
  // Outside peers_mutex_: the released slice (or the inline dispatch) may
  // call straight back into SendToClient.
  if (dispatch != nullptr) {
    dispatch->Release();
  }
  if (dispatch_first_after_install) {
    DispatchPeerFrame(*raw, std::move(first));
  }
}

void ChannelServer::ClosePeer(Peer& peer) {
  if (peer.conn != nullptr) {
    peer.conn->Close();  // deregisters: no further PushFrame after this
  }
  if (peer.dispatch != nullptr) {
    peer.dispatch->Drain();
  }
  if (peer.is_mux) {
    std::vector<std::shared_ptr<Peer>> streams;
    {
      // In-flight open handlers (dedicated threads) finish before the stream
      // sweep: they insert into `streams` and use this ChannelServer, so
      // Stop must not return from under them.
      std::unique_lock<std::mutex> lock(peer.mux_mu);
      peer.mux_open_cv.wait(lock,
                            [&] { return peer.mux_opens_inflight == 0; });
      for (auto& [id, stream] : peer.streams) {
        streams.push_back(std::move(stream));
      }
      peer.streams.clear();
      for (auto& stream : peer.retired_streams) {
        streams.push_back(std::move(stream));
      }
      peer.retired_streams.clear();
    }
    for (auto& stream : streams) {
      if (stream->dispatch != nullptr) {
        stream->dispatch->Drain();
      }
    }
  }
}

void ChannelServer::ReapBrokenPeersLocked() {
  for (auto it = peers_.begin(); it != peers_.end();) {
    if ((*it)->conn->broken()) {
      ClosePeer(**it);
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChannelServer::Ack(uint64_t watermark) {
  AckMsg msg;
  msg.acked_ts = watermark;
  auto payload = msg.Encode();
  BinaryWriter frame;
  EncodeFrame(frame, FrameType::kAck, payload.data(), payload.size());
  const std::vector<uint8_t>& bytes = frame.buffer();
  std::lock_guard<std::mutex> lock(peers_mutex_);
  ReapBrokenPeersLocked();
  for (auto& peer : peers_) {
    if (peer->is_member) {
      continue;
    }
    if (peer->is_mux) {
      // Coalesce: one frame carries every data stream's watermark.
      MuxAckBatchMsg batch;
      {
        std::lock_guard<std::mutex> mux_lock(peer->mux_mu);
        for (auto& [id, stream] : peer->streams) {
          if (!stream->is_member) {
            batch.entries.push_back({id, watermark});
          }
        }
      }
      if (!batch.entries.empty()) {
        (void)peer->conn->TrySendFrame(FrameType::kMuxAckBatch, 0,
                                       batch.Encode());
      }
      continue;
    }
    // Best-effort: a dropped ack is repaired by the watermark in the next
    // handshake, so never block the checkpoint path on a wedged peer.
    (void)peer->conn->TrySend(bytes);
  }
}

void ChannelServer::AckSource(uint32_t source_task, uint32_t source_instance,
                              uint64_t watermark) {
  AckSources({{source_task, source_instance, watermark}});
}

void ChannelServer::AckSources(const std::vector<SourceAck>& acks) {
  if (acks.empty()) {
    return;
  }
  // Pre-encode one kAck frame per source for the per-channel peers.
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(acks.size());
  for (const auto& ack : acks) {
    AckMsg msg;
    msg.acked_ts = ack.watermark;
    auto payload = msg.Encode();
    BinaryWriter frame;
    EncodeFrame(frame, FrameType::kAck, payload.data(), payload.size());
    frames.push_back(frame.buffer());
  }
  std::lock_guard<std::mutex> lock(peers_mutex_);
  ReapBrokenPeersLocked();
  for (auto& peer : peers_) {
    if (peer->is_member) {
      continue;
    }
    if (peer->is_mux) {
      // One coalesced frame per peer: every stream matching any acked
      // source gets its watermark in the same kMuxAckBatch.
      MuxAckBatchMsg batch;
      {
        std::lock_guard<std::mutex> mux_lock(peer->mux_mu);
        for (auto& [id, stream] : peer->streams) {
          if (stream->is_member) {
            continue;
          }
          for (const auto& ack : acks) {
            if (stream->handshake.source_task == ack.source_task &&
                stream->handshake.source_instance == ack.source_instance) {
              batch.entries.push_back({id, ack.watermark});
              break;
            }
          }
        }
      }
      if (!batch.entries.empty()) {
        (void)peer->conn->TrySendFrame(FrameType::kMuxAckBatch, 0,
                                       batch.Encode());
      }
      continue;
    }
    for (size_t i = 0; i < acks.size(); ++i) {
      if (peer->handshake.source_task == acks[i].source_task &&
          peer->handshake.source_instance == acks[i].source_instance) {
        (void)peer->conn->TrySend(frames[i]);
        break;  // a channel carries exactly one source
      }
    }
  }
}

bool ChannelServer::SendToMember(uint32_t member_id, FrameType type,
                                 const std::vector<uint8_t>& payload) {
  BinaryWriter frame;
  EncodeFrame(frame, type, payload.data(), payload.size());
  const std::vector<uint8_t>& bytes = frame.buffer();
  std::lock_guard<std::mutex> lock(peers_mutex_);
  ReapBrokenPeersLocked();
  for (auto& peer : peers_) {
    if (peer->is_member && peer->member_id == member_id) {
      return peer->conn->TrySend(bytes);
    }
  }
  return false;
}

void ChannelServer::SetServeHandlers(RequestFn on_request, FeedFn on_feed) {
  auto handlers = std::make_shared<ServeHandlers>();
  handlers->on_request = std::move(on_request);
  handlers->on_feed = std::move(on_feed);
  std::lock_guard<std::mutex> lock(serve_mutex_);
  serve_ = std::move(handlers);
}

bool ChannelServer::SendToClient(uint64_t client_id,
                                 const std::vector<uint8_t>& payload) {
  BinaryWriter frame;
  EncodeFrame(frame, FrameType::kResponse, payload.data(), payload.size());
  const std::vector<uint8_t>& bytes = frame.buffer();
  std::lock_guard<std::mutex> lock(peers_mutex_);
  for (auto& peer : peers_) {
    if (peer->is_client && peer->client_id == client_id) {
      // Non-blocking: a client that stops reading sheds its own responses
      // rather than wedging the flusher for everyone else.
      return peer->conn->TrySend(bytes);
    }
  }
  return false;
}

size_t ChannelServer::MemberCount() {
  std::lock_guard<std::mutex> lock(peers_mutex_);
  ReapBrokenPeersLocked();
  size_t n = 0;
  for (auto& peer : peers_) {
    if (peer->is_member) {
      ++n;
    }
  }
  return n;
}

void ChannelServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (options_.mode == NetMode::kEventLoop && loop_ != nullptr) {
    loop_->Deregister(listener_.fd());  // waits out an in-flight accept burst
  }
  listener_.Close();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::thread> setups;
  std::list<std::shared_ptr<Peer>> peers;
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    setups.swap(setup_threads_);
    peers.swap(peers_);
  }
  for (auto& peer : peers) {
    ClosePeer(*peer);
  }
  for (auto& t : setups) {
    if (t.joinable()) {
      t.join();
    }
  }
}

}  // namespace sdg::net
