#include "src/net/channel_server.h"

#include <utility>

#include "src/common/logging.h"

namespace sdg::net {

ChannelServer::ChannelServer(ChannelServerOptions options)
    : options_(options) {}

ChannelServer::~ChannelServer() { Stop(); }

Status ChannelServer::Start(HandshakeFn on_handshake, BatchFn on_batch) {
  if (running_.exchange(true)) {
    return FailedPreconditionError("channel server already started");
  }
  on_handshake_ = std::move(on_handshake);
  on_batch_ = std::move(on_batch);
  SDG_ASSIGN_OR_RETURN(listener_, Listener::Bind(options_.port));
  port_ = listener_.port();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ChannelServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto sock = listener_.Accept();
    if (!sock.ok()) {
      return;  // listener closed (Stop) or fatal accept error
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    // Handshakes run off the acceptor so one slow client cannot delay the
    // next accept.
    std::lock_guard<std::mutex> lock(peers_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    setup_threads_.emplace_back(
        [this, s = std::make_shared<Socket>(std::move(*sock))]() mutable {
          SetupPeer(std::move(*s));
        });
  }
}

void ChannelServer::SetupPeer(Socket socket) {
  // Bound the handshake so a silent client cannot pin this thread (and
  // therefore Stop) indefinitely. Cleared before the threaded regime, where
  // an idle-but-healthy peer is normal.
  socket.SetRecvTimeout(5000);
  FrameDecoder carry;
  auto first = ReadFrameBlocking(socket, carry);
  if (!first.ok() || first->type != FrameType::kHandshake) {
    SDG_LOG(kWarning) << "connection dropped before handshake";
    return;
  }
  auto hs = Handshake::Decode(first->payload);
  if (!hs.ok()) {
    SDG_LOG(kWarning) << "malformed handshake: " << hs.status().ToString();
    return;
  }

  HandshakeAck ack;
  if (hs->protocol != kProtocolVersion) {
    ack.accepted = false;
    ack.message = "protocol version mismatch";
  } else {
    auto watermark = on_handshake_(*hs);
    if (watermark.ok()) {
      ack.accepted = true;
      ack.acked_ts = *watermark;
    } else {
      ack.accepted = false;
      ack.message = watermark.status().message();
    }
  }
  Status sent = WriteFrameBlocking(socket, FrameType::kHandshakeAck,
                                   ack.Encode());
  if (!sent.ok() || !ack.accepted) {
    return;
  }

  socket.SetRecvTimeout(0);
  auto peer = std::make_shared<Peer>();
  peer->handshake = std::move(*hs);
  Peer* raw = peer.get();
  Connection::Options copts;
  copts.send_queue_frames = options_.send_queue_frames;
  peer->conn = std::make_unique<Connection>(
      std::move(socket), copts,
      [this, raw](Frame frame) {
        if (frame.type != FrameType::kData) {
          return;
        }
        auto batch = DataBatch::Decode(frame.payload);
        if (!batch.ok()) {
          SDG_LOG(kWarning) << "dropping malformed data batch: "
                            << batch.status().ToString();
          return;
        }
        on_batch_(raw->handshake, std::move(batch->items));
      },
      [](const Status&) {
        // A broken inbound connection is routine (sender failover or
        // restart); the peer is reaped on the next Ack/Stop.
      });
  std::lock_guard<std::mutex> lock(peers_mutex_);
  if (!running_.load(std::memory_order_acquire)) {
    peer->conn->Close();  // raced with Stop — do not install
    return;
  }
  ReapBrokenPeersLocked();
  peers_.push_back(std::move(peer));
}

void ChannelServer::ReapBrokenPeersLocked() {
  for (auto it = peers_.begin(); it != peers_.end();) {
    if ((*it)->conn->broken()) {
      (*it)->conn->Close();
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChannelServer::Ack(uint64_t watermark) {
  AckMsg msg;
  msg.acked_ts = watermark;
  auto payload = msg.Encode();
  BinaryWriter frame;
  EncodeFrame(frame, FrameType::kAck, payload.data(), payload.size());
  const std::vector<uint8_t>& bytes = frame.buffer();
  std::lock_guard<std::mutex> lock(peers_mutex_);
  ReapBrokenPeersLocked();
  for (auto& peer : peers_) {
    // Best-effort: a dropped ack is repaired by the watermark in the next
    // handshake, so never block the checkpoint path on a wedged peer.
    (void)peer->conn->TrySend(bytes);
  }
}

void ChannelServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  listener_.Close();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::thread> setups;
  std::list<std::shared_ptr<Peer>> peers;
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    setups.swap(setup_threads_);
    peers.swap(peers_);
  }
  for (auto& peer : peers) {
    peer->conn->Close();
  }
  for (auto& t : setups) {
    if (t.joinable()) {
      t.join();
    }
  }
}

}  // namespace sdg::net
