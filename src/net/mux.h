// Client side of the multiplexed transport: one TCP socket per peer pair,
// many logical streams.
//
// A MuxConnection is dialled once per (host, port) peer and carries every
// logical channel to that peer over a single Connection in mux framing
// (13-byte headers with a stream id — see frame.h). The kMuxHello /
// kMuxHelloAck exchange rides v1 framing, so a pre-mux receiver fails the
// dial cleanly (it poisons on the unknown frame type and drops the socket)
// and the caller falls back to a dedicated per-channel connection.
//
// Streams are opened with kMuxOpen / kMuxOpenAck. A data stream carries the
// exact Handshake identity of a per-channel connection, and its open-ack
// returns the receiver's durable watermark — RemoteChannel replays its log
// past it, the same §5 reconnect contract as a dedicated socket. A reply
// stream carries kResponse frames (strong-read results) worker -> head, off
// the membership control channel.
//
// Flow control is per-stream credit windows: the open-ack grants an initial
// window in frames, each data-bearing frame spends one credit, and the
// receiver returns credits (kMuxWindow) as its executor consumes frames. A
// hot stream out of credits blocks only its own sender — the shared socket
// keeps moving for its siblings. Cumulative acks arrive coalesced
// (kMuxAckBatch, one frame for many streams) and are synthesized back into
// per-stream kAck frames here, so stream consumers reuse the per-channel
// frame handling unchanged.
//
// All stream callbacks run on the event-loop thread (the Connection
// contract). MuxConnection never repairs itself: when the shared socket
// breaks, every stream fails, and the owner redials via MuxPool::Get.
#ifndef SDG_NET_MUX_H_
#define SDG_NET_MUX_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace sdg::net {

class MuxStream;

class MuxConnection : public std::enable_shared_from_this<MuxConnection> {
 public:
  struct Options {
    // Event loop driving the shared socket (required — mux is epoll-only).
    EventLoop* loop = nullptr;
    uint64_t deployment_id = 0;
    // Staged-frame capacity of the shared socket. Larger than a dedicated
    // connection's default because many streams share the buffer; per-stream
    // fairness comes from the credit windows, not this bound.
    size_t send_queue_frames = 256;
    // Blocking-read timeout for the hello exchange.
    int hello_timeout_ms = 5000;
    // Bound on the wait for a stream's open-ack.
    int open_timeout_ms = 10000;
  };

  // Dials the peer and runs the hello exchange. Any failure (including a
  // v1-only receiver dropping the socket on the unknown frame type) surfaces
  // as a non-ok Result — the caller falls back to per-channel sockets.
  static Result<std::shared_ptr<MuxConnection>> Dial(const std::string& host,
                                                     uint16_t port,
                                                     Options options);

  ~MuxConnection();
  MuxConnection(const MuxConnection&) = delete;
  MuxConnection& operator=(const MuxConnection&) = delete;

  // Opens one logical stream, blocking until the server's open-ack (bounded
  // by open_timeout_ms). `on_frame` sees every server->client frame for the
  // stream — kAck both direct and synthesized from kMuxAckBatch — on the
  // loop thread. `on_error` fires once if the shared connection breaks.
  Result<std::shared_ptr<MuxStream>> OpenStream(const MuxOpenMsg& open,
                                                Connection::FrameFn on_frame,
                                                Connection::ErrorFn on_error);

  bool broken() const { return broken_.load(std::memory_order_acquire); }

  // Closes the shared socket; every stream fails. Idempotent.
  void Close();

 private:
  friend class MuxStream;

  MuxConnection(Options options, uint32_t default_window)
      : options_(options),
        default_window_(default_window == 0 ? 64 : default_window) {}

  void OnFrame(Frame frame);
  void OnError(const Status& status);
  // Routes one frame to its stream (dropping frames for abandoned streams).
  void Deliver(uint32_t stream_id, Frame frame);
  std::shared_ptr<MuxStream> FindStream(uint32_t stream_id);

  const Options options_;
  const uint32_t default_window_;
  std::unique_ptr<Connection> conn_;
  std::atomic<bool> broken_{false};

  std::mutex mu_;
  uint32_t next_stream_ = 1;
  // weak: an abandoned stream handle expires here and its frames are
  // dropped, instead of a shared_ptr cycle pinning the connection.
  std::map<uint32_t, std::weak_ptr<MuxStream>> streams_;
};

// Handle for one logical stream. Senders on a single stream must serialize
// themselves (frames interleave whole-frame across streams, FIFO within
// one) — the same discipline as one Connection per channel.
class MuxStream {
 public:
  // Sends one data-bearing frame, blocking while the stream is out of
  // flow-control credits or the shared socket's staging buffer is full.
  // False when the connection broke — the caller's log keeps the frame
  // replayable, exactly the Connection::Send contract.
  bool Send(FrameType type, std::vector<uint8_t> payload);

  // Best-effort variant: never waits for credits or buffer space.
  bool TrySend(FrameType type, const std::vector<uint8_t>& payload);

  uint32_t id() const { return id_; }
  // The receiver's durable watermark from the open-ack (data streams).
  uint64_t acked_ts() const { return acked_ts_; }
  bool broken() const;

 private:
  friend class MuxConnection;

  MuxStream(std::shared_ptr<MuxConnection> conn, uint32_t id,
            Connection::FrameFn on_frame, Connection::ErrorFn on_error)
      : conn_(std::move(conn)),
        id_(id),
        on_frame_(std::move(on_frame)),
        on_error_(std::move(on_error)) {}

  // Loop-thread entry points, called by MuxConnection::Deliver.
  void CompleteOpen(const MuxOpenAckMsg& ack);
  void GrantCredits(uint32_t credits);
  void OnFrame(Frame frame);
  void FailStream(const Status& status);
  // OpenStream's blocking wait; returns false on timeout/breakage.
  bool AwaitOpen(int timeout_ms, MuxOpenAckMsg* out);

  const std::shared_ptr<MuxConnection> conn_;
  const uint32_t id_;
  const Connection::FrameFn on_frame_;
  const Connection::ErrorFn on_error_;
  uint64_t acked_ts_ = 0;  // written once by CompleteOpen before OpenStream returns

  std::mutex mu_;
  std::condition_variable cv_;
  bool open_done_ = false;
  MuxOpenAckMsg open_ack_;
  uint64_t credits_ = 0;
  std::atomic<bool> broken_{false};  // also read lock-free by broken()
  bool error_fired_ = false;
};

// One shared MuxConnection per peer, keyed by host:port. Broken entries are
// dropped and redialled on the next Get. Thread-safe; Get holds the pool
// lock across a dial (peer dials are rare — flips and reconnects).
class MuxPool {
 public:
  explicit MuxPool(MuxConnection::Options base) : base_(base) {}
  ~MuxPool() { CloseAll(); }

  Result<std::shared_ptr<MuxConnection>> Get(const std::string& host,
                                             uint16_t port);

  void CloseAll();

 private:
  const MuxConnection::Options base_;
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<MuxConnection>> conns_;
};

}  // namespace sdg::net

#endif  // SDG_NET_MUX_H_
