#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace sdg::net {

namespace {

uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t ev = 0;
  if (want_read) {
    ev |= EPOLLIN;
  }
  if (want_write) {
    ev |= EPOLLOUT;
  }
  return ev;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  SDG_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << std::strerror(errno);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  SDG_CHECK(wake_fd_ >= 0) << "eventfd: " << std::strerror(errno);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  SDG_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0)
      << "epoll_ctl(wake): " << std::strerror(errno);
  thread_ = std::thread([this] { Loop(); });
}

EventLoop::~EventLoop() {
  stop_.store(true, std::memory_order_release);
  Wake();
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

EventLoop* EventLoop::Shared() {
  // Leaked intentionally: outlives static destruction order so late teardown
  // (e.g. a Connection closed from a static destructor) stays safe.
  static EventLoop* loop = new EventLoop();
  return loop;
}

Status EventLoop::Register(int fd, Handler* handler, bool want_read,
                           bool want_write) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers_[fd] = handler;
  }
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers_.erase(fd);
    return Status(StatusCode::kUnavailable,
                  std::string("epoll_ctl(add): ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status EventLoop::UpdateEvents(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status(StatusCode::kUnavailable,
                  std::string("epoll_ctl(mod): ") + std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::Deregister(int fd) {
  // Best-effort: the fd may already be gone (peer closed + kernel reaped).
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  handlers_.erase(fd);
  if (!InLoopThread()) {
    cv_.wait(lock, [this, fd] { return dispatching_fd_ != fd; });
  }
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::Wake() {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Loop() {
  std::vector<epoll_event> events(64);
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SDG_LOG(kError) << "epoll_wait: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        std::deque<std::function<void()>> run;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          run.swap(posted_);
        }
        for (auto& fn : run) {
          fn();
        }
        continue;
      }
      Handler* h;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = handlers_.find(fd);
        if (it == handlers_.end()) {
          continue;  // deregistered between epoll_wait and dispatch
        }
        h = it->second;
        dispatching_fd_ = fd;
      }
      // EPOLLHUP is folded into the read path (read sees EOF); only a true
      // error condition takes the OnError shortcut.
      if (ev & EPOLLERR) {
        h->OnError();
      } else {
        if (ev & (EPOLLIN | EPOLLHUP)) {
          h->OnReadable();
        }
        if (ev & EPOLLOUT) {
          h->OnWritable();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        dispatching_fd_ = -1;
      }
      cv_.notify_all();
    }
    if (n == static_cast<int>(events.size())) {
      events.resize(events.size() * 2);
    }
  }
}

}  // namespace sdg::net
