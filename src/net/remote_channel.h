// RemoteChannel: the sender half of an inter-node dataflow edge over TCP.
//
// Implements runtime::DeliveryTarget, so the deployment's batching hot path
// (RouteEmits / InjectAll delivery groups) works unchanged whether the
// destination TE instance is a local mailbox or a process away.
//
// Protocol (§5 as the transport's error path):
//   1. Dial + handshake (deployment id, source TE id/instance, destination
//      entry name, emit-clock). The HandshakeAck carries the receiver's
//      durable watermark for this source.
//   2. Every delivered item is appended to the attached OutputBuffer (the
//      upstream-backup log) BEFORE it is framed, then sent as a kData batch
//      through a bounded send queue (backpressure).
//   3. kAck frames trim the log: entries at or below the watermark are
//      durable at the receiver and will never be replayed.
//   4. On connection loss, Deliver* transparently redials; after the fresh
//      handshake the channel replays every logged entry past the receiver's
//      acked watermark, marked replayed=true so downstream dedup applies.
//
// Thread safety: Deliver/DeliverAll may be called from one sender thread at a
// time (the per-source FIFO contract); acks arrive on the connection's IO
// thread (event loop or reader) and only touch the OutputBuffer, which locks
// internally.
//
// Repair runs on two tracks. Deliver* keeps the synchronous
// reconnect-and-replay (the authoritative path — a caller with data in hand
// always gets the full retry budget). Additionally, the moment a connection
// reports broken, a background reconnect task is submitted to the executor:
// one bounded round of redial attempts, so an idle sender's channel heals
// before the next Deliver instead of paying the redial latency then. The
// task never reschedules itself — a permanently-down receiver must not pin a
// shared pool worker.
#ifndef SDG_NET_REMOTE_CHANNEL_H_
#define SDG_NET_REMOTE_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/mux.h"
#include "src/runtime/delivery.h"
#include "src/runtime/executor.h"
#include "src/runtime/output_buffer.h"

namespace sdg::net {

struct RemoteChannelOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t deployment_id = 0;
  // SourceId the receiver sees on every item (keys its dedup watermarks).
  uint32_t source_task = runtime::kRemoteSourceTask;
  uint32_t source_instance = 0;
  // Entry TE of the receiving deployment.
  std::string entry;
  // Bounded send queue (frames) — the wire's backpressure window.
  size_t send_queue_frames = 64;
  // Reconnect policy: attempts * backoff bounds how long a receiver restart
  // may take before Deliver* gives up and reports the channel broken.
  int reconnect_attempts = 100;
  int reconnect_backoff_ms = 100;
  // Drive the socket from the shared epoll loop (default) or fall back to
  // the thread-per-connection baseline.
  bool use_event_loop = true;
  EventLoop* loop = nullptr;  // nullptr = EventLoop::Shared() when enabled
  // Runs the background reconnect task; nullptr = Executor::Shared().
  runtime::Executor* executor = nullptr;
  // When set, the channel rides a logical stream of the pool's shared
  // per-peer socket instead of dialling its own connection — connection
  // count to a peer becomes O(1) regardless of (entry, partition) fan-out.
  // If the peer does not speak mux (old binary), the dial falls back to a
  // dedicated socket transparently. Caller keeps ownership of the pool.
  MuxPool* mux = nullptr;
};

class RemoteChannel final : public runtime::DeliveryTarget {
 public:
  // `log` is the upstream-backup buffer for this edge; the channel appends
  // every item (dest_instance 0 — the remote endpoint is one destination)
  // and trims it on acks. Caller keeps ownership; the log may be shared with
  // the deployment's checkpoint machinery.
  RemoteChannel(RemoteChannelOptions options, runtime::OutputBuffer* log);
  ~RemoteChannel() override;

  // Dials and handshakes; replays anything already in the log past the
  // receiver's watermark (crash-restart of the *sender* process with a
  // restored log works the same as a reconnect).
  Status Connect();

  // DeliveryTarget. Items must carry monotone per-source timestamps (the
  // caller stamps them; see LogicalClock). Blocks on backpressure; on a
  // broken wire, reconnects and replays before accepting new items. Returns
  // false / 0 only when reconnecting exhausts its budget BEFORE the items
  // were logged — once logged they count as accepted (replay delivers them),
  // so the caller must never resend a batch that was accepted.
  bool Deliver(runtime::DataItem item) override;
  size_t DeliverAll(std::vector<runtime::DataItem>&& items) override;

  // Entries not yet acked by the receiver (0 once everything sent is
  // durable remotely).
  size_t UnackedCount() const { return log_->size(); }

  uint64_t acked_watermark() const;

  // Closes the connection without touching the log.
  void Close();

  bool connected() const;

 private:
  // Dial + handshake + replay; called under send_mutex_. Tries the mux pool
  // first (when configured), falling back to a dedicated socket.
  Status ConnectLocked();
  // Opens a logical stream on the shared per-peer socket; under send_mutex_.
  Status ConnectMuxLocked();
  // Replays everything logged past `acked_ts`; under send_mutex_.
  Status ReplayLocked(uint64_t acked_ts);
  // Ensures a live connection, redialing with backoff; under send_mutex_.
  Status EnsureConnectedLocked();
  // Frames and sends one batch; false on wire failure. Under send_mutex_.
  bool SendBatchLocked(const std::vector<runtime::DataItem>& items);
  void HandleFrame(Frame frame);
  // Submits one bounded background reconnect round (dedup'd: at most one in
  // flight). Called from the connection's on_error.
  void StartBackgroundReconnect();
  // The mux round: all attempts on one dedicated thread (never the shared
  // executor — see StartBackgroundReconnect for why).
  void MuxBackgroundReconnect();
  // One attempt of that round; re-submits itself (as a fresh executor task,
  // releasing the worker in between) while the budget lasts.
  void BackgroundReconnect(int attempt);

  const RemoteChannelOptions options_;
  runtime::OutputBuffer* const log_;
  runtime::Executor* const executor_;

  mutable std::mutex send_mutex_;
  std::unique_ptr<Connection> conn_;  // dedicated-socket mode
  std::shared_ptr<MuxStream> stream_;  // mux mode (exactly one of the two)
  mutable std::mutex ack_mutex_;
  uint64_t acked_watermark_ = 0;

  std::atomic<bool> closed_{false};
  std::atomic<bool> reconnecting_{false};
  std::mutex reconnect_mutex_;
  std::condition_variable reconnect_cv_;
  size_t reconnect_inflight_ = 0;  // Close/dtor wait for zero
};

}  // namespace sdg::net

#endif  // SDG_NET_REMOTE_CHANNEL_H_
