#include "src/net/mux.h"

#include <chrono>
#include <utility>

namespace sdg::net {

Result<std::shared_ptr<MuxConnection>> MuxConnection::Dial(
    const std::string& host, uint16_t port, Options options) {
  if (options.loop == nullptr) {
    return InvalidArgumentError("mux requires an event loop");
  }
  SDG_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(host, port));
  sock.SetRecvTimeout(options.hello_timeout_ms);
  MuxHelloMsg hello;
  hello.deployment_id = options.deployment_id;
  SDG_RETURN_IF_ERROR(
      WriteFrameBlocking(sock, FrameType::kMuxHello, hello.Encode()));
  // A v1-only receiver poisons its decoder on the unknown type and drops the
  // socket — the read fails and the caller falls back to per-channel mode.
  FrameDecoder carry;
  SDG_ASSIGN_OR_RETURN(Frame reply, ReadFrameBlocking(sock, carry));
  if (reply.type != FrameType::kMuxHelloAck) {
    return UnavailableError("mux hello: unexpected reply frame");
  }
  SDG_ASSIGN_OR_RETURN(MuxHelloAckMsg ack, MuxHelloAckMsg::Decode(reply.payload));
  if (!ack.accepted) {
    return UnavailableError("mux hello rejected: " + ack.message);
  }
  sock.SetRecvTimeout(0);

  auto mux = std::shared_ptr<MuxConnection>(
      new MuxConnection(options, ack.window));
  Connection::Options copts;
  copts.loop = options.loop;
  copts.mux_frames = true;
  copts.send_queue_frames = options.send_queue_frames;
  std::weak_ptr<MuxConnection> weak = mux;
  mux->conn_ = std::make_unique<Connection>(
      std::move(sock), copts,
      [weak](Frame frame) {
        if (auto self = weak.lock()) {
          self->OnFrame(std::move(frame));
        }
      },
      [weak](const Status& status) {
        if (auto self = weak.lock()) {
          self->OnError(status);
        }
      },
      std::move(carry));
  if (mux->conn_->broken()) {
    return UnavailableError("mux connection failed during setup");
  }
  return mux;
}

MuxConnection::~MuxConnection() { Close(); }

void MuxConnection::Close() {
  broken_.store(true, std::memory_order_release);
  if (conn_) {
    conn_->Close();
  }
  OnError(UnavailableError("mux connection closed"));
}

Result<std::shared_ptr<MuxStream>> MuxConnection::OpenStream(
    const MuxOpenMsg& open, Connection::FrameFn on_frame,
    Connection::ErrorFn on_error) {
  if (broken_.load(std::memory_order_acquire)) {
    return UnavailableError("mux connection is broken");
  }
  std::shared_ptr<MuxStream> stream;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t id = next_stream_++;
    stream = std::shared_ptr<MuxStream>(new MuxStream(
        shared_from_this(), id, std::move(on_frame), std::move(on_error)));
    streams_[id] = stream;
  }
  if (!conn_->SendFrame(FrameType::kMuxOpen, stream->id(), open.Encode())) {
    std::lock_guard<std::mutex> lock(mu_);
    streams_.erase(stream->id());
    return UnavailableError("mux open: connection broke before send");
  }
  MuxOpenAckMsg ack;
  if (!stream->AwaitOpen(options_.open_timeout_ms, &ack)) {
    std::lock_guard<std::mutex> lock(mu_);
    streams_.erase(stream->id());
    return UnavailableError("mux open: no ack (timeout or broken link)");
  }
  if (!ack.accepted) {
    std::lock_guard<std::mutex> lock(mu_);
    streams_.erase(stream->id());
    return UnavailableError("mux open rejected: " + ack.message);
  }
  stream->acked_ts_ = ack.acked_ts;
  stream->GrantCredits(ack.window == 0 ? default_window_ : ack.window);
  return stream;
}

std::shared_ptr<MuxStream> MuxConnection::FindStream(uint32_t stream_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    return nullptr;
  }
  auto stream = it->second.lock();
  if (!stream) {
    streams_.erase(it);  // abandoned handle — stop routing to it
  }
  return stream;
}

void MuxConnection::OnFrame(Frame frame) {
  if (frame.type == FrameType::kMuxAckBatch) {
    auto batch = MuxAckBatchMsg::Decode(frame.payload);
    if (!batch.ok()) {
      conn_->Abort(batch.status());
      return;
    }
    // Synthesize the per-stream kAck each consumer already understands.
    for (const auto& entry : batch->entries) {
      AckMsg ack;
      ack.acked_ts = entry.acked_ts;
      Frame synth;
      synth.type = FrameType::kAck;
      synth.stream = entry.stream;
      synth.payload = ack.Encode();
      Deliver(entry.stream, std::move(synth));
    }
    return;
  }
  Deliver(frame.stream, std::move(frame));
}

void MuxConnection::Deliver(uint32_t stream_id, Frame frame) {
  auto stream = FindStream(stream_id);
  if (!stream) {
    return;  // stream abandoned or never opened; drop
  }
  switch (frame.type) {
    case FrameType::kMuxOpenAck: {
      auto ack = MuxOpenAckMsg::Decode(frame.payload);
      if (!ack.ok()) {
        conn_->Abort(ack.status());
        return;
      }
      stream->CompleteOpen(*ack);
      return;
    }
    case FrameType::kMuxWindow: {
      auto grant = MuxWindowMsg::Decode(frame.payload);
      if (!grant.ok()) {
        conn_->Abort(grant.status());
        return;
      }
      stream->GrantCredits(grant->credits);
      return;
    }
    default:
      stream->OnFrame(std::move(frame));
      return;
  }
}

void MuxConnection::OnError(const Status& status) {
  broken_.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<MuxStream>> streams;
  {
    std::lock_guard<std::mutex> lock(mu_);
    streams.reserve(streams_.size());
    for (auto& [id, weak] : streams_) {
      if (auto stream = weak.lock()) {
        streams.push_back(std::move(stream));
      }
    }
  }
  for (auto& stream : streams) {
    stream->FailStream(status);
  }
}

// --- MuxStream ---------------------------------------------------------------

bool MuxStream::Send(FrameType type, std::vector<uint8_t> payload) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return credits_ > 0 || broken_.load(std::memory_order_acquire);
    });
    if (broken_.load(std::memory_order_acquire)) {
      return false;
    }
    --credits_;
  }
  // Send outside the stream lock: the loop thread takes it to grant credits,
  // and must never be blocked behind a sender waiting on socket capacity.
  return conn_->conn_->SendFrame(type, id_, std::move(payload));
}

bool MuxStream::TrySend(FrameType type, const std::vector<uint8_t>& payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (broken_.load(std::memory_order_acquire) || credits_ == 0) {
      return false;
    }
    --credits_;
  }
  return conn_->conn_->TrySendFrame(type, id_, payload);
}

bool MuxStream::broken() const {
  return broken_.load(std::memory_order_acquire) || conn_->broken();
}

void MuxStream::CompleteOpen(const MuxOpenAckMsg& ack) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_ack_ = ack;
    open_done_ = true;
  }
  cv_.notify_all();
}

void MuxStream::GrantCredits(uint32_t credits) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    credits_ += credits;
  }
  cv_.notify_all();
}

void MuxStream::OnFrame(Frame frame) {
  if (on_frame_) {
    on_frame_(std::move(frame));
  }
}

void MuxStream::FailStream(const Status& status) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    broken_.store(true, std::memory_order_release);
    fire = !error_fired_;
    error_fired_ = true;
  }
  cv_.notify_all();
  if (fire && on_error_) {
    on_error_(status);
  }
}

bool MuxStream::AwaitOpen(int timeout_ms, MuxOpenAckMsg* out) {
  std::unique_lock<std::mutex> lock(mu_);
  bool done = cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return open_done_ || broken_.load(std::memory_order_acquire);
  });
  if (!done || !open_done_) {
    return false;
  }
  *out = open_ack_;
  return true;
}

// --- MuxPool -----------------------------------------------------------------

Result<std::shared_ptr<MuxConnection>> MuxPool::Get(const std::string& host,
                                                    uint16_t port) {
  const std::string key = host + ":" + std::to_string(port);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(key);
  if (it != conns_.end()) {
    if (!it->second->broken()) {
      return it->second;
    }
    conns_.erase(it);
  }
  SDG_ASSIGN_OR_RETURN(auto conn, MuxConnection::Dial(host, port, base_));
  conns_[key] = conn;
  return conn;
}

void MuxPool::CloseAll() {
  std::unordered_map<std::string, std::shared_ptr<MuxConnection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& [key, conn] : conns) {
    conn->Close();
  }
}

}  // namespace sdg::net
