// Minimal RAII wrappers over POSIX TCP sockets.
//
// Sockets start blocking (handshakes are simple synchronous exchanges) and
// switch to non-blocking for the data path, where a single epoll loop
// (event_loop.h) multiplexes every connection: TryRead/TryWrite surface
// would-block instead of parking a thread. The legacy thread-per-connection
// mode keeps using the blocking calls. All failures surface as Status — a
// dropped peer is an expected event the reconnect path handles, never a
// crash.
#ifndef SDG_NET_SOCKET_H_
#define SDG_NET_SOCKET_H_

#include <sys/uio.h>

#include <cstdint>
#include <string>
#include <utility>

#include "src/common/status.h"

namespace sdg::net {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Dials host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  // Reads up to `size` bytes; returns 0 on orderly EOF. EINTR is retried.
  Result<size_t> ReadSome(uint8_t* buf, size_t size);

  // Writes all `size` bytes or returns the first error (EPIPE surfaces as a
  // Status, never a signal: sends use MSG_NOSIGNAL).
  Status WriteAll(const uint8_t* buf, size_t size);

  // Bounds how long ReadSome may block (0 restores indefinite blocking).
  // Used for the handshake phase so a silent client cannot pin a thread.
  void SetRecvTimeout(int millis);

  // Switches O_NONBLOCK on or off (event-loop mode flips it on after the
  // blocking handshake).
  Status SetNonBlocking(bool enable);

  // Non-blocking read: bytes read, 0 on orderly EOF, or kWouldBlock when the
  // socket has no data right now. EINTR is retried.
  static constexpr size_t kWouldBlock = SIZE_MAX;
  Result<size_t> TryRead(uint8_t* buf, size_t size);

  // Non-blocking write: bytes accepted (possibly short), 0 when the kernel
  // buffer is full (would block). EINTR is retried; EPIPE surfaces as Status.
  Result<size_t> TryWrite(const uint8_t* buf, size_t size);

  // Scatter-gather variant of TryWrite: one sendmsg over `iovcnt` segments.
  // Same contract — bytes accepted (possibly short), 0 on would-block.
  Result<size_t> TryWritev(const struct iovec* iov, int iovcnt);

  // Wakes any thread blocked in ReadSome/WriteAll with EOF/EPIPE.
  void ShutdownBoth();

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds 0.0.0.0:`port` with SO_REUSEADDR; port 0 picks an ephemeral port
  // (readable via port()).
  static Result<Listener> Bind(uint16_t port);

  // Blocks for the next connection; kAborted once Close() was called.
  Result<Socket> Accept();

  // Switches the listening fd to O_NONBLOCK so an event loop can drive it.
  Status SetNonBlocking(bool enable);

  // Non-blocking accept: a socket, or nullopt-like empty Socket() when no
  // connection is pending (EAGAIN). Errors (including a closed listener)
  // surface as Status. The accepted socket is blocking regardless of the
  // listener's mode.
  Result<Socket> TryAccept();

  // Unblocks Accept and releases the port. Idempotent.
  void Close();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace sdg::net

#endif  // SDG_NET_SOCKET_H_
