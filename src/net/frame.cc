#include "src/net/frame.h"

#include <cstring>

namespace sdg::net {

namespace {

Status FrameError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}

// Decode must consume the payload exactly: trailing bytes mean the sender
// and receiver disagree about the message layout.
Status RequireAtEnd(const BinaryReader& r, const char* what) {
  if (!r.AtEnd()) {
    return FrameError(std::string(what) + ": trailing bytes in payload");
  }
  return Status::Ok();
}

}  // namespace

void EncodeFrame(BinaryWriter& w, FrameType type, const uint8_t* payload,
                 size_t size) {
  w.Write<uint32_t>(kFrameMagic);
  w.Write<uint8_t>(static_cast<uint8_t>(type));
  w.Write<uint32_t>(static_cast<uint32_t>(size));
  w.WriteBytes(payload, size);
}

void EncodeMuxFrame(BinaryWriter& w, FrameType type, uint32_t stream,
                    const uint8_t* payload, size_t size) {
  w.Write<uint32_t>(kFrameMagic);
  w.Write<uint8_t>(static_cast<uint8_t>(type));
  w.Write<uint32_t>(stream);
  w.Write<uint32_t>(static_cast<uint32_t>(size));
  w.WriteBytes(payload, size);
}

size_t EncodeFrameHeader(uint8_t* out, FrameType type, uint32_t stream,
                         size_t payload_size, bool mux) {
  const uint32_t length = static_cast<uint32_t>(payload_size);
  std::memcpy(out, &kFrameMagic, 4);
  out[4] = static_cast<uint8_t>(type);
  if (mux) {
    std::memcpy(out + 5, &stream, 4);
    std::memcpy(out + 9, &length, 4);
    return kMuxFrameHeaderBytes;
  }
  std::memcpy(out + 5, &length, 4);
  return kFrameHeaderBytes;
}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state feeding does not memmove per frame.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  const size_t header_bytes = mux_ ? kMuxFrameHeaderBytes : kFrameHeaderBytes;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < header_bytes) {
    return false;
  }
  const uint8_t* p = buffer_.data() + consumed_;
  uint32_t magic;
  std::memcpy(&magic, p, sizeof(magic));
  if (magic != kFrameMagic) {
    poisoned_ = FrameError("bad frame magic: stream desynchronised");
    return poisoned_;
  }
  const uint8_t type = p[4];
  uint32_t stream = 0;
  uint32_t length;
  if (mux_) {
    std::memcpy(&stream, p + 5, sizeof(stream));
    std::memcpy(&length, p + 9, sizeof(length));
  } else {
    std::memcpy(&length, p + 5, sizeof(length));
  }
  if (length > kMaxFramePayload) {
    poisoned_ = FrameError("frame payload length " + std::to_string(length) +
                           " exceeds limit");
    return poisoned_;
  }
  if (type < static_cast<uint8_t>(FrameType::kHandshake) ||
      type > kMaxFrameType) {
    poisoned_ = FrameError("unknown frame type " + std::to_string(type));
    return poisoned_;
  }
  if (avail < header_bytes + length) {
    return false;  // payload still in flight
  }
  out->type = static_cast<FrameType>(type);
  out->stream = stream;
  out->payload.assign(p + header_bytes, p + header_bytes + length);
  consumed_ += header_bytes + length;
  return true;
}

// --- Handshake ----------------------------------------------------------------

std::vector<uint8_t> Handshake::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(protocol);
  w.Write<uint64_t>(deployment_id);
  w.Write<uint32_t>(source_task);
  w.Write<uint32_t>(source_instance);
  w.WriteString(entry);
  w.Write<uint64_t>(emit_clock);
  return std::move(w).TakeBuffer();
}

Result<Handshake> Handshake::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  Handshake h;
  SDG_ASSIGN_OR_RETURN(h.protocol, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(h.deployment_id, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(h.source_task, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(h.source_instance, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(h.entry, r.ReadString());
  SDG_ASSIGN_OR_RETURN(h.emit_clock, r.Read<uint64_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "handshake"));
  return h;
}

std::vector<uint8_t> HandshakeAck::Encode() const {
  BinaryWriter w;
  w.Write<uint8_t>(accepted ? 1 : 0);
  w.Write<uint64_t>(acked_ts);
  w.WriteString(message);
  return std::move(w).TakeBuffer();
}

Result<HandshakeAck> HandshakeAck::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  HandshakeAck a;
  SDG_ASSIGN_OR_RETURN(uint8_t accepted, r.Read<uint8_t>());
  a.accepted = accepted != 0;
  SDG_ASSIGN_OR_RETURN(a.acked_ts, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(a.message, r.ReadString());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "handshake-ack"));
  return a;
}

// --- DataBatch ----------------------------------------------------------------

void DataBatch::EncodeTo(BinaryWriter& w) const {
  w.Clear();
  w.Write<uint32_t>(static_cast<uint32_t>(items.size()));
  for (const auto& item : items) {
    item.Serialize(w);
  }
}

Result<DataBatch> DataBatch::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  DataBatch b;
  SDG_ASSIGN_OR_RETURN(uint32_t count, r.Read<uint32_t>());
  b.items.reserve(std::min<size_t>(count, r.remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    SDG_ASSIGN_OR_RETURN(runtime::DataItem item,
                         runtime::DataItem::Deserialize(r));
    b.items.push_back(std::move(item));
  }
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "data batch"));
  return b;
}

// --- AckMsg -------------------------------------------------------------------

std::vector<uint8_t> AckMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint64_t>(acked_ts);
  return std::move(w).TakeBuffer();
}

Result<AckMsg> AckMsg::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  AckMsg a;
  SDG_ASSIGN_OR_RETURN(a.acked_ts, r.Read<uint64_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "ack"));
  return a;
}

// --- JoinMsg ------------------------------------------------------------------

std::vector<uint8_t> JoinMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(protocol);
  w.Write<uint64_t>(deployment_id);
  w.Write<uint32_t>(member_id);
  w.WriteString(host);
  w.Write<uint32_t>(data_port);
  w.WriteString(name);
  return std::move(w).TakeBuffer();
}

Result<JoinMsg> JoinMsg::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  JoinMsg m;
  SDG_ASSIGN_OR_RETURN(m.protocol, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.deployment_id, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.member_id, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.host, r.ReadString());
  SDG_ASSIGN_OR_RETURN(m.data_port, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.name, r.ReadString());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "join"));
  return m;
}

std::vector<uint8_t> JoinAckMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint8_t>(accepted ? 1 : 0);
  w.Write<uint32_t>(member_id);
  w.WriteString(message);
  return std::move(w).TakeBuffer();
}

Result<JoinAckMsg> JoinAckMsg::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  JoinAckMsg m;
  SDG_ASSIGN_OR_RETURN(uint8_t accepted, r.Read<uint8_t>());
  m.accepted = accepted != 0;
  SDG_ASSIGN_OR_RETURN(m.member_id, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.message, r.ReadString());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "join-ack"));
  return m;
}

// --- Migration ----------------------------------------------------------------

std::vector<uint8_t> MigrateBeginMsg::Encode() const {
  BinaryWriter w;
  w.WriteString(state);
  w.Write<uint32_t>(partition);
  w.Write<uint32_t>(num_partitions);
  w.WriteString(target_host);
  w.Write<uint32_t>(target_port);
  return std::move(w).TakeBuffer();
}

Result<MigrateBeginMsg> MigrateBeginMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MigrateBeginMsg m;
  SDG_ASSIGN_OR_RETURN(m.state, r.ReadString());
  SDG_ASSIGN_OR_RETURN(m.partition, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.num_partitions, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.target_host, r.ReadString());
  SDG_ASSIGN_OR_RETURN(m.target_port, r.Read<uint32_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "migrate-begin"));
  return m;
}

std::vector<uint8_t> MigrateChunkMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(chunk_index);
  w.Write<uint8_t>(flags);
  w.WriteVector(bytes);
  return std::move(w).TakeBuffer();
}

Result<MigrateChunkMsg> MigrateChunkMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MigrateChunkMsg m;
  SDG_ASSIGN_OR_RETURN(m.chunk_index, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.flags, r.Read<uint8_t>());
  SDG_ASSIGN_OR_RETURN(m.bytes, r.ReadVector<uint8_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "migrate-chunk"));
  return m;
}

std::vector<uint8_t> MigrateCommitMsg::Encode() const {
  BinaryWriter w;
  w.WriteString(state);
  w.Write<uint32_t>(partition);
  w.Write<uint64_t>(watermarks.size());
  for (const auto& sw : watermarks) {
    w.Write<uint32_t>(sw.source_instance);
    w.Write<uint64_t>(sw.watermark);
  }
  return std::move(w).TakeBuffer();
}

Result<MigrateCommitMsg> MigrateCommitMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MigrateCommitMsg m;
  SDG_ASSIGN_OR_RETURN(m.state, r.ReadString());
  SDG_ASSIGN_OR_RETURN(m.partition, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(uint64_t n, r.Read<uint64_t>());
  m.watermarks.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SourceWatermark sw;
    SDG_ASSIGN_OR_RETURN(sw.source_instance, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(sw.watermark, r.Read<uint64_t>());
    m.watermarks.push_back(sw);
  }
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "migrate-commit"));
  return m;
}

std::vector<uint8_t> MigrateAckMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint8_t>(ok ? 1 : 0);
  w.Write<uint64_t>(watermark);
  w.WriteString(message);
  return std::move(w).TakeBuffer();
}

Result<MigrateAckMsg> MigrateAckMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MigrateAckMsg m;
  SDG_ASSIGN_OR_RETURN(uint8_t ok, r.Read<uint8_t>());
  m.ok = ok != 0;
  SDG_ASSIGN_OR_RETURN(m.watermark, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.message, r.ReadString());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "migrate-ack"));
  return m;
}

// --- ControlMsg ---------------------------------------------------------------

std::vector<uint8_t> ControlMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(op);
  w.Write<uint32_t>(partition);
  w.Write<uint64_t>(arg);
  w.WriteString(text);
  return std::move(w).TakeBuffer();
}

Result<ControlMsg> ControlMsg::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  ControlMsg m;
  SDG_ASSIGN_OR_RETURN(m.op, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.partition, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.arg, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.text, r.ReadString());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "control"));
  return m;
}

// --- RequestMsg ---------------------------------------------------------------

std::vector<uint8_t> RequestMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint64_t>(request_id);
  w.Write<uint8_t>(op);
  w.Write<uint8_t>(flags);
  w.Write<int64_t>(key);
  w.WriteString(value);
  w.Write<uint32_t>(max_epoch_lag);
  return std::move(w).TakeBuffer();
}

Result<RequestMsg> RequestMsg::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  RequestMsg m;
  SDG_ASSIGN_OR_RETURN(m.request_id, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.op, r.Read<uint8_t>());
  SDG_ASSIGN_OR_RETURN(m.flags, r.Read<uint8_t>());
  SDG_ASSIGN_OR_RETURN(m.key, r.Read<int64_t>());
  SDG_ASSIGN_OR_RETURN(m.value, r.ReadString());
  SDG_ASSIGN_OR_RETURN(m.max_epoch_lag, r.Read<uint32_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "request"));
  return m;
}

// --- ResponseMsg --------------------------------------------------------------

std::vector<uint8_t> ResponseMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint64_t>(request_id);
  w.Write<uint8_t>(code);
  w.Write<uint8_t>(flags);
  w.WriteString(value);
  w.Write<uint64_t>(epoch);
  return std::move(w).TakeBuffer();
}

Result<ResponseMsg> ResponseMsg::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  ResponseMsg m;
  SDG_ASSIGN_OR_RETURN(m.request_id, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.code, r.Read<uint8_t>());
  SDG_ASSIGN_OR_RETURN(m.flags, r.Read<uint8_t>());
  SDG_ASSIGN_OR_RETURN(m.value, r.ReadString());
  SDG_ASSIGN_OR_RETURN(m.epoch, r.Read<uint64_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "response"));
  return m;
}

// --- ReplicaSubscribeMsg ------------------------------------------------------

std::vector<uint8_t> ReplicaSubscribeMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(protocol);
  w.Write<uint64_t>(deployment_id);
  w.Write<uint32_t>(member_id);
  w.WriteString(state);
  return std::move(w).TakeBuffer();
}

Result<ReplicaSubscribeMsg> ReplicaSubscribeMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  ReplicaSubscribeMsg m;
  SDG_ASSIGN_OR_RETURN(m.protocol, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.deployment_id, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.member_id, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.state, r.ReadString());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "replica-subscribe"));
  return m;
}

// --- ReplicaEpochMsg ----------------------------------------------------------

std::vector<uint8_t> ReplicaEpochMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(partition);
  w.Write<uint32_t>(member_id);
  w.Write<uint8_t>(kind);
  w.Write<uint64_t>(epoch);
  w.Write<uint64_t>(queue_depth);
  w.Write<uint32_t>(static_cast<uint32_t>(chunks.size()));
  for (const auto& c : chunks) w.WriteVector(c);
  return std::move(w).TakeBuffer();
}

Result<ReplicaEpochMsg> ReplicaEpochMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  ReplicaEpochMsg m;
  SDG_ASSIGN_OR_RETURN(m.partition, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.member_id, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.kind, r.Read<uint8_t>());
  SDG_ASSIGN_OR_RETURN(m.epoch, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.queue_depth, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(uint32_t n, r.Read<uint32_t>());
  m.chunks.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SDG_ASSIGN_OR_RETURN(std::vector<uint8_t> c, r.ReadVector<uint8_t>());
    m.chunks.push_back(std::move(c));
  }
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "replica-epoch"));
  return m;
}

// --- Mux messages -------------------------------------------------------------

std::vector<uint8_t> MuxHelloMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(protocol);
  w.Write<uint64_t>(deployment_id);
  return std::move(w).TakeBuffer();
}

Result<MuxHelloMsg> MuxHelloMsg::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MuxHelloMsg m;
  SDG_ASSIGN_OR_RETURN(m.protocol, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.deployment_id, r.Read<uint64_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "mux-hello"));
  return m;
}

std::vector<uint8_t> MuxHelloAckMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint8_t>(accepted ? 1 : 0);
  w.Write<uint32_t>(window);
  w.WriteString(message);
  return std::move(w).TakeBuffer();
}

Result<MuxHelloAckMsg> MuxHelloAckMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MuxHelloAckMsg m;
  SDG_ASSIGN_OR_RETURN(uint8_t accepted, r.Read<uint8_t>());
  m.accepted = accepted != 0;
  SDG_ASSIGN_OR_RETURN(m.window, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.message, r.ReadString());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "mux-hello-ack"));
  return m;
}

std::vector<uint8_t> MuxOpenMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint8_t>(kind);
  w.Write<uint64_t>(deployment_id);
  w.Write<uint32_t>(member_id);
  w.Write<uint32_t>(source_task);
  w.Write<uint32_t>(source_instance);
  w.WriteString(entry);
  w.Write<uint64_t>(emit_clock);
  return std::move(w).TakeBuffer();
}

Result<MuxOpenMsg> MuxOpenMsg::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MuxOpenMsg m;
  SDG_ASSIGN_OR_RETURN(m.kind, r.Read<uint8_t>());
  SDG_ASSIGN_OR_RETURN(m.deployment_id, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.member_id, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.source_task, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.source_instance, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.entry, r.ReadString());
  SDG_ASSIGN_OR_RETURN(m.emit_clock, r.Read<uint64_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "mux-open"));
  return m;
}

std::vector<uint8_t> MuxOpenAckMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint8_t>(accepted ? 1 : 0);
  w.Write<uint64_t>(acked_ts);
  w.Write<uint32_t>(window);
  w.WriteString(message);
  return std::move(w).TakeBuffer();
}

Result<MuxOpenAckMsg> MuxOpenAckMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MuxOpenAckMsg m;
  SDG_ASSIGN_OR_RETURN(uint8_t accepted, r.Read<uint8_t>());
  m.accepted = accepted != 0;
  SDG_ASSIGN_OR_RETURN(m.acked_ts, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(m.window, r.Read<uint32_t>());
  SDG_ASSIGN_OR_RETURN(m.message, r.ReadString());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "mux-open-ack"));
  return m;
}

std::vector<uint8_t> MuxWindowMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(credits);
  return std::move(w).TakeBuffer();
}

Result<MuxWindowMsg> MuxWindowMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MuxWindowMsg m;
  SDG_ASSIGN_OR_RETURN(m.credits, r.Read<uint32_t>());
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "mux-window"));
  return m;
}

std::vector<uint8_t> MuxAckBatchMsg::Encode() const {
  BinaryWriter w;
  w.Write<uint32_t>(static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.Write<uint32_t>(e.stream);
    w.Write<uint64_t>(e.acked_ts);
  }
  return std::move(w).TakeBuffer();
}

Result<MuxAckBatchMsg> MuxAckBatchMsg::Decode(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  MuxAckBatchMsg m;
  SDG_ASSIGN_OR_RETURN(uint32_t n, r.Read<uint32_t>());
  m.entries.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    Entry e;
    SDG_ASSIGN_OR_RETURN(e.stream, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(e.acked_ts, r.Read<uint64_t>());
    m.entries.push_back(e);
  }
  SDG_RETURN_IF_ERROR(RequireAtEnd(r, "mux-ack-batch"));
  return m;
}

}  // namespace sdg::net
