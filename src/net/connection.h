// Connection: one framed, full-duplex TCP connection between nodes.
//
// Two operating modes, selected by Options::loop:
//
//  - Event-loop mode (loop != nullptr, the default deployment path): the
//    socket is nonblocking and registered on a shared epoll loop. Reads feed
//    the FrameDecoder and dispatch complete frames from the loop thread;
//    writes stage as {inline header, payload ref} entries in a bounded deque
//    and flush as scatter-gather writev batches — SendFrame never copies the
//    payload into a contiguous frame. The sender's own thread flushes
//    inline when the kernel buffer has room (no epoll round-trip on an idle
//    socket); EPOLLOUT is armed only for the residual. No threads are owned —
//    a process with hundreds of connections pays for one IO thread total.
//
//  - Threaded mode (loop == nullptr, kept as the measured baseline and for
//    callers that want blocking isolation): a writer thread drains a BOUNDED
//    frame queue and a reader thread feeds the decoder, exactly the pre-epoll
//    design.
//
// Both modes share the backpressure contract: Send blocks while the send
// buffer holds `send_queue_frames` frames — the same discipline as
// BoundedQueue mailbox pushes, extended across the wire.
//
// On any socket or codec error the connection turns `broken`: buffered
// frames are dropped (the sender's OutputBuffer log retains every unacked
// item, so the reconnect-replay path re-sends them; see remote_channel.h),
// and on_error fires exactly once. A Connection never repairs itself —
// RemoteChannel dials a fresh one.
//
// Close() drains first: frames already accepted into the send buffer are
// flushed (bounded by a few seconds) before the socket is cut, so
// send-then-immediately-stop loses nothing on a healthy link. A broken
// connection closes immediately.
#ifndef SDG_NET_CONNECTION_H_
#define SDG_NET_CONNECTION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/queue.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace sdg::net {

class Connection : private EventLoop::Handler {
 public:
  struct Options {
    // Frames the connection may buffer before Send blocks. Each data frame is
    // one delivery batch, so this bounds in-flight bytes the same way a
    // mailbox capacity bounds queued items.
    size_t send_queue_frames = 64;
    // Read chunk size.
    size_t read_buffer_bytes = 64 * 1024;
    // Event loop driving the socket; nullptr selects threaded mode.
    EventLoop* loop = nullptr;
    // Multiplexed framing: 13-byte headers carrying a stream id (protocol
    // v2). Both ends must agree — negotiated by the kMuxHello exchange
    // before the Connection is constructed (see mux.h).
    bool mux_frames = false;
  };

  // Called one complete frame at a time — from the loop thread in event-loop
  // mode, from the reader thread in threaded mode. Must not block for long in
  // loop mode (it stalls every connection on the loop): hand heavy work to
  // the executor.
  using FrameFn = std::function<void(Frame frame)>;
  // Called once, from whichever thread hits the failure first.
  using ErrorFn = std::function<void(const Status& status)>;

  // Takes ownership of a connected socket and any bytes `carry` already read
  // past the synchronous handshake exchange.
  Connection(Socket socket, Options options, FrameFn on_frame,
             ErrorFn on_error, FrameDecoder carry = {});
  ~Connection() override;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Enqueues one encoded frame, blocking while the send buffer is full
  // (backpressure). Returns false if the connection is broken or closed —
  // the frame is NOT sent and the caller's log keeps it replayable.
  bool Send(std::vector<uint8_t> frame_bytes);

  // Non-blocking variant for best-effort traffic (acks): false when the
  // buffer is full, broken, or closed. Never waits.
  bool TrySend(const std::vector<uint8_t>& frame_bytes);

  // Zero-copy framed send: encodes the (9- or 13-byte, per Options::
  // mux_frames) header inline in the queue entry and stages the payload by
  // move — the flush path gathers header+payload straight into writev, so
  // the payload bytes are never copied again. Blocking/backpressure contract
  // matches Send. `stream` is ignored unless mux_frames.
  bool SendFrame(FrameType type, uint32_t stream,
                 std::vector<uint8_t> payload);

  // Non-blocking framed send (best-effort traffic): contract of TrySend.
  bool TrySendFrame(FrameType type, uint32_t stream,
                    const std::vector<uint8_t>& payload);

  // Pauses/resumes read-side dispatch (event-loop mode only; no-op in
  // threaded mode). While paused the kernel receive buffer fills and TCP
  // flow control pushes back on the sender — wire-level backpressure for a
  // receiver whose executor entity is behind.
  void SetReadInterest(bool want_read);

  // Flushes frames already accepted (unless broken; bounded wait), then cuts
  // the socket and releases loop registrations / joins threads. Idempotent.
  void Close();

  // Marks the connection broken and cuts the socket immediately — no drain,
  // no joins — so the peer observes a closed link and can redial. Unlike
  // Close(), safe to call from inside on_frame (the threaded-mode reader
  // would otherwise self-join). Close() must still run later for teardown.
  void Abort(const Status& status) { Fail(status); }

  bool broken() const { return broken_.load(std::memory_order_acquire); }

 private:
  // Event-loop mode callbacks (loop thread).
  void OnReadable() override;
  void OnWritable() override;
  void OnError() override;

  // Threaded mode.
  void WriterLoop();
  void ReaderLoop();

  void Fail(const Status& status);
  void DispatchDecoded();  // drains decoder_ into on_frame_; Fails on codec error

  Socket socket_;
  int fd_ = -1;  // cached: Deregister needs it while socket_ is being torn down
  const Options options_;
  FrameFn on_frame_;
  ErrorFn on_error_;
  FrameDecoder decoder_;
  std::vector<uint8_t> read_buf_;

  std::atomic<bool> broken_{false};
  std::atomic<bool> error_fired_{false};
  std::atomic<bool> closed_{false};

  // --- threaded mode ---
  BoundedQueue<std::vector<uint8_t>> send_queue_;
  std::thread writer_;
  std::thread reader_;
  // Frames accepted by Send/TrySend and not yet written to the socket (or
  // dropped by a failure). Close waits for this to hit zero so a sender that
  // stops right after its last Send still gets the frame onto the wire.
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  size_t pending_frames_ = 0;

  // --- event-loop mode ---
  // One staged frame: a small inline header (encoded at enqueue time) plus
  // the payload by reference. The flush path gathers both into an iovec
  // batch, so payload bytes are written straight from here — no recopy.
  struct SendEntry {
    uint8_t header[16] = {};
    uint8_t header_len = 0;  // 0: payload already holds a whole encoded frame
    std::vector<uint8_t> payload;
    size_t size() const { return header_len + payload.size(); }
  };
  bool EnqueueLocked(std::unique_lock<std::mutex>& lock, SendEntry entry,
                     bool may_block);
  // Drains as much of send_q_ as the kernel accepts via writev, then
  // arms/disarms EPOLLOUT to match the residual. On socket error releases
  // `lock`, runs Fail(), and returns false.
  bool FlushLocked(std::unique_lock<std::mutex>& lock);

  std::mutex send_mu_;
  std::condition_variable send_cv_;
  std::deque<SendEntry> send_q_;
  size_t send_offset_ = 0;     // bytes of send_q_.front() already written
  bool write_armed_ = false;   // EPOLLOUT currently requested
  bool want_read_ = true;      // EPOLLIN currently requested
};

// Blocking helper for the synchronous handshake exchange that precedes the
// data-path regime: reads whole frames through `decoder` until one is
// complete. Bytes read past the frame stay buffered in `decoder` — hand it
// to the Connection afterwards.
Result<Frame> ReadFrameBlocking(Socket& socket, FrameDecoder& decoder);

// Encodes and writes one frame synchronously (handshake path only; the data
// path goes through Connection::Send).
Status WriteFrameBlocking(Socket& socket, FrameType type,
                          const std::vector<uint8_t>& payload);

}  // namespace sdg::net

#endif  // SDG_NET_CONNECTION_H_
