// Connection: one framed, full-duplex TCP connection between nodes.
//
// A connection owns its socket and two threads:
//   - a writer thread draining a BOUNDED frame queue (Send blocks while the
//     queue is full — the same backpressure contract as BoundedQueue mailbox
//     pushes, extended across the wire), and
//   - a reader thread feeding a FrameDecoder and dispatching complete frames
//     to the on_frame callback.
//
// On any socket or codec error the connection turns `broken`: queued frames
// are dropped (the sender's OutputBuffer log retains every unacked item, so
// the reconnect-replay path re-sends them; see remote_channel.h), both
// threads exit, and on_error fires exactly once. A Connection never repairs
// itself — RemoteChannel dials a fresh one.
#ifndef SDG_NET_CONNECTION_H_
#define SDG_NET_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/queue.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace sdg::net {

class Connection {
 public:
  struct Options {
    // Frames the writer may buffer before Send blocks. Each data frame is one
    // delivery batch, so this bounds in-flight bytes the same way a mailbox
    // capacity bounds queued items.
    size_t send_queue_frames = 64;
    // Reader chunk size.
    size_t read_buffer_bytes = 64 * 1024;
  };

  // Called from the reader thread, one complete frame at a time.
  using FrameFn = std::function<void(Frame frame)>;
  // Called once, from whichever thread hits the failure first.
  using ErrorFn = std::function<void(const Status& status)>;

  // Takes ownership of a connected socket and any bytes `carry` already read
  // past the synchronous handshake exchange.
  Connection(Socket socket, Options options, FrameFn on_frame,
             ErrorFn on_error, FrameDecoder carry = {});
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Enqueues one encoded frame, blocking while the send queue is full
  // (backpressure). Returns false if the connection is broken or closed —
  // the frame is NOT sent and the caller's log keeps it replayable.
  bool Send(std::vector<uint8_t> frame_bytes);

  // Non-blocking variant for best-effort traffic (acks): false when the
  // queue is full, broken, or closed. Never waits.
  bool TrySend(const std::vector<uint8_t>& frame_bytes);

  // Shuts the socket down (unblocking both threads) and joins them.
  // Idempotent; safe to call concurrently with a failing connection.
  void Close();

  bool broken() const { return broken_.load(std::memory_order_acquire); }

 private:
  void WriterLoop();
  void ReaderLoop();
  void Fail(const Status& status);

  Socket socket_;
  const Options options_;
  FrameFn on_frame_;
  ErrorFn on_error_;
  FrameDecoder decoder_;

  BoundedQueue<std::vector<uint8_t>> send_queue_;
  std::thread writer_;
  std::thread reader_;
  std::atomic<bool> broken_{false};
  std::atomic<bool> error_fired_{false};
  std::atomic<bool> closed_{false};
};

// Blocking helper for the synchronous handshake exchange that precedes the
// threaded regime: reads whole frames through `decoder` until one is
// complete. Bytes read past the frame stay buffered in `decoder` — hand it
// to the Connection afterwards.
Result<Frame> ReadFrameBlocking(Socket& socket, FrameDecoder& decoder);

// Encodes and writes one frame synchronously (handshake path only; the data
// path goes through Connection::Send).
Status WriteFrameBlocking(Socket& socket, FrameType type,
                          const std::vector<uint8_t>& payload);

}  // namespace sdg::net

#endif  // SDG_NET_CONNECTION_H_
