// Length-prefixed frame codec for the inter-node TCP transport.
//
// Every message on a node-to-node connection is one frame:
//
//   magic   u32  (kFrameMagic, rejects desynchronised/garbage streams)
//   type    u8   (FrameType)
//   length  u32  (payload bytes; bounded by kMaxFramePayload)
//   payload length bytes
//
// Frames reuse the BinaryWriter/BinaryReader encoding of src/common, so a
// DataItem crossing a real socket is byte-identical to one crossing the
// simulated node boundary. Encoding writes into a caller-owned BinaryWriter
// (the PR-1 thread-local scratch-reuse scheme); decoding is incremental —
// FrameDecoder::Feed accepts arbitrary read() slices and surfaces complete
// frames one at a time, returning Status (never crashing) on corrupt input.
#ifndef SDG_NET_FRAME_H_
#define SDG_NET_FRAME_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/status.h"
#include "src/runtime/data_item.h"

namespace sdg::net {

inline constexpr uint32_t kFrameMagic = 0x53444746;  // "SDGF"
inline constexpr uint32_t kProtocolVersion = 1;
// Protocol generation that understands multiplexed framing (kMuxHello and
// the stream-id header below). Carried in MuxHelloMsg so a mux-capable
// dialer and an old receiver fail the hello cleanly instead of desyncing;
// v1 per-channel framing stays accepted everywhere.
inline constexpr uint32_t kProtocolVersionMux = 2;
// A frame carries at most one delivery batch; 64 MiB bounds decoder memory
// against corrupt or hostile length fields.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;
// Mux framing widens the header with a stream id between type and length:
//   magic u32 | type u8 | stream u32 | length u32
// Both sides switch to it after the kMuxHello/kMuxHelloAck exchange (which
// itself rides v1 framing), so a connection is either all-v1 or all-mux.
inline constexpr size_t kMuxFrameHeaderBytes = 4 + 1 + 4 + 4;

enum class FrameType : uint8_t {
  kHandshake = 1,     // sender -> receiver, once per connection
  kHandshakeAck = 2,  // receiver -> sender, carries the acked watermark
  kData = 3,          // batch of DataItems for the handshaken entry
  kAck = 4,           // receiver -> sender: durable watermark advanced
  // Membership (elastic scale-out): a fresh worker process registers with a
  // running deployment's head; the connection then stays open as the
  // member's control channel (kControl both ways).
  kJoin = 5,      // worker -> head, once per connection
  kJoinAck = 6,   // head -> worker
  // Live state-partition migration, its own connection to the target's
  // ChannelServer: Begin opens the session, Chunk streams base/delta chunk
  // segments, Commit is the cutover barrier carrying the watermark handoff,
  // Ack confirms each applied phase.
  kMigrateBegin = 7,
  kMigrateChunk = 8,
  kMigrateCommit = 9,
  kMigrateAck = 10,
  kControl = 11,  // head <-> member commands/replies on the join connection
  // Serve path (client-facing front door): a client's first frame is a
  // kRequest — no handshake — and the connection then carries pipelined
  // requests and (out-of-order) responses keyed by request id.
  kRequest = 12,   // client -> gateway
  kResponse = 13,  // gateway -> client
  // Replica feed: a worker's first frame on a second connection to the head
  // subscribes it as a partial-state publisher; kReplicaEpoch frames then
  // stream checkpoint-epoch base/delta chunk blobs to the gateway's read
  // replicas (§3.2 partial state as the read-scaling path).
  kReplicaSubscribe = 14,  // worker -> gateway, once per connection
  kReplicaEpoch = 15,      // worker -> gateway: epoch announce/base/delta
  // Multiplexed transport (one TCP socket per peer pair, many logical
  // streams). The hello pair negotiates the switch to mux framing; every
  // frame after it carries a stream id in the widened header.
  kMuxHello = 16,     // dialer -> server, first frame, v1 framing
  kMuxHelloAck = 17,  // server -> dialer, v1 framing; mux framing follows
  kMuxOpen = 18,      // dialer -> server: open one logical stream
  kMuxOpenAck = 19,   // server -> dialer: per-stream watermark + send window
  kMuxWindow = 20,    // server -> dialer: flow-control credit grant
  kMuxAckBatch = 21,  // server -> dialer: coalesced per-stream watermarks
};
// Highest type value FrameDecoder accepts; bump when appending frame types.
inline constexpr uint8_t kMaxFrameType =
    static_cast<uint8_t>(FrameType::kMuxAckBatch);

struct Frame {
  FrameType type = FrameType::kData;
  // Logical stream the frame belongs to (mux framing only; 0 on v1 frames).
  uint32_t stream = 0;
  std::vector<uint8_t> payload;
};

// Appends one whole frame (header + payload) to `w`.
void EncodeFrame(BinaryWriter& w, FrameType type, const uint8_t* payload,
                 size_t size);

// Mux-framing variant: header carries the stream id.
void EncodeMuxFrame(BinaryWriter& w, FrameType type, uint32_t stream,
                    const uint8_t* payload, size_t size);

// Writes only the header into `out` (used by the scatter-gather send path,
// which stages header and payload as separate iovec segments). Returns the
// header length: kFrameHeaderBytes or kMuxFrameHeaderBytes.
size_t EncodeFrameHeader(uint8_t* out, FrameType type, uint32_t stream,
                         size_t payload_size, bool mux);

// Incremental decoder. Feed() buffers raw bytes; Next() pops the next
// complete frame. A magic/length violation poisons the decoder (the stream
// cannot be resynchronised) and every later call returns the same error.
class FrameDecoder {
 public:
  // Appends raw bytes read from the transport.
  void Feed(const uint8_t* data, size_t size);

  // True  -> *out holds the next frame.
  // False -> no complete frame buffered yet (read more).
  // Error -> kDataLoss: bad magic, oversized length, or unknown type.
  Result<bool> Next(Frame* out);

  // Switches to mux framing (13-byte headers with a stream id) for every
  // frame not yet parsed. Called right after the hello exchange; bytes
  // already buffered past the hello-ack are mux-framed and parse correctly.
  void EnableMux() { mux_ = true; }
  bool mux() const { return mux_; }

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool mux_ = false;
  Status poisoned_;
};

// --- Message payloads ---------------------------------------------------------
//
// Each message (de)serialises through BinaryWriter/BinaryReader; Decode
// rejects truncated or trailing bytes with a Status.

// Opens a channel: which deployment the sender belongs to, which TE instance
// is talking (the remote SourceId downstream dedup keys on), which entry TE
// of the receiving deployment the items are for, and the sender's emit-clock
// position (diagnostics: the receiver can bound the replay window).
struct Handshake {
  uint32_t protocol = kProtocolVersion;
  uint64_t deployment_id = 0;
  uint32_t source_task = 0;
  uint32_t source_instance = 0;
  std::string entry;
  uint64_t emit_clock = 0;

  std::vector<uint8_t> Encode() const;
  static Result<Handshake> Decode(const std::vector<uint8_t>& payload);
};

// Handshake reply. `acked_ts` is the receiver's durable watermark for this
// source: the sender replays every logged entry past it (§5 as the
// transport's reconnect path).
struct HandshakeAck {
  bool accepted = false;
  uint64_t acked_ts = 0;
  std::string message;  // reject reason

  std::vector<uint8_t> Encode() const;
  static Result<HandshakeAck> Decode(const std::vector<uint8_t>& payload);
};

// Batch of data items, in sender FIFO order.
struct DataBatch {
  std::vector<runtime::DataItem> items;

  // Encodes straight into `w` (cleared first), so the per-batch hot path can
  // reuse a thread-local scratch writer.
  void EncodeTo(BinaryWriter& w) const;
  static Result<DataBatch> Decode(const std::vector<uint8_t>& payload);
};

// Advances the sender's trim watermark for this connection's source.
struct AckMsg {
  uint64_t acked_ts = 0;

  std::vector<uint8_t> Encode() const;
  static Result<AckMsg> Decode(const std::vector<uint8_t>& payload);
};

// --- Membership / migration messages ------------------------------------------

// Registers a worker process with a running deployment's head. `member_id`
// is stable across restarts (it names the worker's backup-store directory);
// a rejoin with a known id replaces the previous incarnation. `data_port` is
// the joiner's own ChannelServer, where data channels and migration sessions
// are dialled.
struct JoinMsg {
  uint32_t protocol = kProtocolVersion;
  uint64_t deployment_id = 0;
  uint32_t member_id = 0;
  std::string host;
  uint32_t data_port = 0;
  std::string name;  // diagnostics only

  std::vector<uint8_t> Encode() const;
  static Result<JoinMsg> Decode(const std::vector<uint8_t>& payload);
};

struct JoinAckMsg {
  bool accepted = false;
  uint32_t member_id = 0;
  std::string message;  // reject reason

  std::vector<uint8_t> Encode() const;
  static Result<JoinAckMsg> Decode(const std::vector<uint8_t>& payload);
};

// Opens a migration session for one partition of one SE. Over the membership
// channel (head -> source worker) the target fields say where to push; over
// the session connection itself (source -> target) they are empty.
struct MigrateBeginMsg {
  std::string state;
  uint32_t partition = 0;
  uint32_t num_partitions = 0;
  std::string target_host;
  uint32_t target_port = 0;

  std::vector<uint8_t> Encode() const;
  static Result<MigrateBeginMsg> Decode(const std::vector<uint8_t>& payload);
};

// One chunk-stream segment of the partition being migrated. Segments of one
// chunk_index concatenate into a v2 chunk blob; an apply-marker (empty
// payload) closes the phase: the target assembles and applies everything
// buffered, then acks.
inline constexpr uint8_t kMigrateChunkDelta = 1;  // segment of a delta chunk
inline constexpr uint8_t kMigrateChunkApply = 2;  // phase barrier, no payload
struct MigrateChunkMsg {
  uint32_t chunk_index = 0;
  uint8_t flags = 0;
  std::vector<uint8_t> bytes;

  std::vector<uint8_t> Encode() const;
  static Result<MigrateChunkMsg> Decode(const std::vector<uint8_t>& payload);
};

// Cutover barrier: the source has shipped its final delta and will never
// serve this partition again. `watermarks` carries, per remote source
// instance feeding this partition (one per head-side entry channel), the
// highest timestamp reflected in the migrated state — the receiving worker
// reports these on the next data handshakes so the head's output buffers
// replay exactly the entries past them (the watermark handoff).
struct SourceWatermark {
  uint32_t source_instance = 0;
  uint64_t watermark = 0;
};
struct MigrateCommitMsg {
  std::string state;
  uint32_t partition = 0;
  std::vector<SourceWatermark> watermarks;

  std::vector<uint8_t> Encode() const;
  static Result<MigrateCommitMsg> Decode(const std::vector<uint8_t>& payload);
};

struct MigrateAckMsg {
  bool ok = false;
  uint64_t watermark = 0;
  std::string message;

  std::vector<uint8_t> Encode() const;
  static Result<MigrateAckMsg> Decode(const std::vector<uint8_t>& payload);
};

// Commands/replies on the membership channel.
inline constexpr uint32_t kCtrlCheckpoint = 1;  // head->worker: persist + ack
inline constexpr uint32_t kCtrlDone = 2;        // worker->head: command done
inline constexpr uint32_t kCtrlRelease = 3;     // head->worker: drop partition
inline constexpr uint32_t kCtrlStraggler = 4;   // worker->head: local straggler
inline constexpr uint32_t kCtrlCutover = 5;     // head->worker: finish migration
inline constexpr uint32_t kCtrlPrepared = 6;    // worker->head: base+deltas sent
inline constexpr uint32_t kCtrlError = 7;       // worker->head: command failed
inline constexpr uint32_t kCtrlPing = 8;        // head->worker: liveness probe
struct ControlMsg {
  uint32_t op = 0;
  uint32_t partition = 0;
  uint64_t arg = 0;
  std::string text;

  std::vector<uint8_t> Encode() const;
  static Result<ControlMsg> Decode(const std::vector<uint8_t>& payload);
};

// --- Serve-path messages ------------------------------------------------------

// One KV operation. `request_id` is client-scoped (echoed back verbatim);
// responses may arrive out of order, so clients key pending ops on it.
// Reads default to the strong path (routed to the owning partition); setting
// kReadStale allows the gateway to answer from a partial-state replica as
// long as the replica lags the owner's announced checkpoint epoch by at most
// `max_epoch_lag` epochs (the staleness bound).
inline constexpr uint8_t kOpPut = 1;
inline constexpr uint8_t kOpGet = 2;
inline constexpr uint8_t kOpDel = 3;
inline constexpr uint8_t kOpPing = 4;  // connection probe, answered inline
inline constexpr uint8_t kReadStale = 1;  // RequestMsg.flags bit
struct RequestMsg {
  uint64_t request_id = 0;
  uint8_t op = kOpGet;
  uint8_t flags = 0;
  int64_t key = 0;
  std::string value;  // kOpPut payload
  uint32_t max_epoch_lag = 1;

  std::vector<uint8_t> Encode() const;
  static Result<RequestMsg> Decode(const std::vector<uint8_t>& payload);
};

inline constexpr uint8_t kRespOk = 1;
inline constexpr uint8_t kRespOverloaded = 2;  // shed by admission control
inline constexpr uint8_t kRespError = 3;
inline constexpr uint8_t kRespFromReplica = 1;  // ResponseMsg.flags bit
struct ResponseMsg {
  uint64_t request_id = 0;
  uint8_t code = kRespOk;
  uint8_t flags = 0;
  std::string value;    // get result ("" = absent) or error text
  uint64_t epoch = 0;   // replica reads: the epoch the value reflects

  std::vector<uint8_t> Encode() const;
  static Result<ResponseMsg> Decode(const std::vector<uint8_t>& payload);
};

// --- Replica feed messages ----------------------------------------------------

// Opens a worker's replica-feed connection to the gateway.
struct ReplicaSubscribeMsg {
  uint32_t protocol = kProtocolVersion;
  uint64_t deployment_id = 0;
  uint32_t member_id = 0;
  std::string state;

  std::vector<uint8_t> Encode() const;
  static Result<ReplicaSubscribeMsg> Decode(
      const std::vector<uint8_t>& payload);
};

// One replica-feed event for a partition. An announce (no chunks) advances
// the owner's epoch watermark the moment a checkpoint epoch is cut — the
// gateway's staleness bound is measured against it. Base/delta events carry
// the v2 chunk blobs of that epoch; a base replaces the replica's contents,
// a delta applies dirty records + tombstones on top. `queue_depth` piggybacks
// the worker's current mailbox depth for admission control.
inline constexpr uint8_t kEpochAnnounce = 1;
inline constexpr uint8_t kEpochBase = 2;
inline constexpr uint8_t kEpochDelta = 3;
struct ReplicaEpochMsg {
  uint32_t partition = 0;
  uint32_t member_id = 0;
  uint8_t kind = kEpochAnnounce;
  uint64_t epoch = 0;
  uint64_t queue_depth = 0;
  std::vector<std::vector<uint8_t>> chunks;

  std::vector<uint8_t> Encode() const;
  static Result<ReplicaEpochMsg> Decode(const std::vector<uint8_t>& payload);
};

// --- Mux messages -------------------------------------------------------------

// First frame of a multiplexed connection (v1 framing). The protocol field
// lets a future generation renegotiate; a server that predates mux poisons
// its decoder on the unknown type and the dialer falls back to per-channel
// connections.
struct MuxHelloMsg {
  uint32_t protocol = kProtocolVersionMux;
  uint64_t deployment_id = 0;

  std::vector<uint8_t> Encode() const;
  static Result<MuxHelloMsg> Decode(const std::vector<uint8_t>& payload);
};

// Reply, still v1-framed; both sides switch to mux framing after it.
// `window` is the initial per-stream send window (frames the dialer may have
// in flight on one stream before credits are granted back).
struct MuxHelloAckMsg {
  bool accepted = false;
  uint32_t window = 0;
  std::string message;  // reject reason

  std::vector<uint8_t> Encode() const;
  static Result<MuxHelloAckMsg> Decode(const std::vector<uint8_t>& payload);
};

// Logical stream kinds. A data stream is one (entry, partition) channel: the
// embedded handshake fields mean exactly what Handshake means on a dedicated
// connection, and kData frames flow dialer -> server. A reply stream carries
// kResponse frames (strong-read results) worker -> head, off the membership
// control channel.
inline constexpr uint8_t kMuxStreamData = 1;
inline constexpr uint8_t kMuxStreamReply = 2;

// Opens one stream. Sent on the stream's own id so the server can reply on
// it; the dialer sends no data frames until the ack arrives.
struct MuxOpenMsg {
  uint8_t kind = kMuxStreamData;
  uint64_t deployment_id = 0;
  uint32_t member_id = 0;  // reply streams: who is answering
  // Data streams: the channel identity (see Handshake).
  uint32_t source_task = 0;
  uint32_t source_instance = 0;
  std::string entry;
  uint64_t emit_clock = 0;

  std::vector<uint8_t> Encode() const;
  static Result<MuxOpenMsg> Decode(const std::vector<uint8_t>& payload);
};

// Per-stream open reply: the receiver's durable watermark for the stream's
// source (the dialer replays its log past it, exactly the HandshakeAck
// contract) and the stream's initial send window in frames.
struct MuxOpenAckMsg {
  bool accepted = false;
  uint64_t acked_ts = 0;
  uint32_t window = 0;
  std::string message;  // reject reason

  std::vector<uint8_t> Encode() const;
  static Result<MuxOpenAckMsg> Decode(const std::vector<uint8_t>& payload);
};

// Flow-control credit grant: the server consumed `credits` frames of the
// stream, so the dialer may have that many more in flight. Per-stream
// windows are what keep one hot partition from starving its siblings on the
// shared socket — a stream out of credits blocks only its own sender.
struct MuxWindowMsg {
  uint32_t credits = 0;

  std::vector<uint8_t> Encode() const;
  static Result<MuxWindowMsg> Decode(const std::vector<uint8_t>& payload);
};

// Coalesced cumulative acks: one frame carries the durable watermark of
// every stream a checkpoint covered, instead of one kAck frame per
// (entry, partition) channel.
struct MuxAckBatchMsg {
  struct Entry {
    uint32_t stream = 0;
    uint64_t acked_ts = 0;
  };
  std::vector<Entry> entries;

  std::vector<uint8_t> Encode() const;
  static Result<MuxAckBatchMsg> Decode(const std::vector<uint8_t>& payload);
};

}  // namespace sdg::net

#endif  // SDG_NET_FRAME_H_
