// ChannelServer: the receiver half of inter-node dataflow edges over TCP.
//
// Listens on one port per node process. Each accepted connection performs the
// synchronous handshake (the on_handshake callback validates the peer and
// returns this node's durable watermark for that source), then streams kData
// frames whose batches are handed to on_batch in wire order — typically
// straight into Deployment::InjectRemote, which routes them through the same
// batched dispatch as local traffic.
//
// Ack(watermark) broadcasts a kAck on every live connection after the node
// has made the watermark durable (checkpoint persisted); senders trim their
// upstream-backup logs on it. Acks are at-least-once: a lost ack is repaired
// by the watermark carried in the next handshake.
#ifndef SDG_NET_CHANNEL_SERVER_H_
#define SDG_NET_CHANNEL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/net/connection.h"
#include "src/net/frame.h"
#include "src/runtime/data_item.h"

namespace sdg::net {

struct ChannelServerOptions {
  uint16_t port = 0;  // 0 = ephemeral; see port()
  size_t send_queue_frames = 16;
};

class ChannelServer {
 public:
  // Returns the durable watermark for the handshaking source (0 if never
  // seen); an error Status rejects the connection with its message.
  using HandshakeFn = std::function<Result<uint64_t>(const Handshake& hs)>;
  // One decoded batch, in wire order, from the connection identified by the
  // handshake. Called on that connection's reader thread; per-source FIFO
  // order is therefore preserved, and blocking here backpressures the wire.
  using BatchFn =
      std::function<void(const Handshake& hs,
                         std::vector<runtime::DataItem> items)>;

  explicit ChannelServer(ChannelServerOptions options);
  ~ChannelServer();

  ChannelServer(const ChannelServer&) = delete;
  ChannelServer& operator=(const ChannelServer&) = delete;

  Status Start(HandshakeFn on_handshake, BatchFn on_batch);

  // Broadcasts the durable watermark to every live sender.
  void Ack(uint64_t watermark);

  // Stops accepting, closes every connection, joins all threads.
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Peer {
    Handshake handshake;
    std::unique_ptr<Connection> conn;
  };

  void AcceptLoop();
  // Performs the handshake on a fresh socket and installs the peer; runs on
  // a short-lived setup thread so a slow client cannot stall the acceptor.
  void SetupPeer(Socket socket);
  void ReapBrokenPeersLocked();

  const ChannelServerOptions options_;
  HandshakeFn on_handshake_;
  BatchFn on_batch_;

  Listener listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> accepted_{0};

  std::mutex peers_mutex_;
  std::list<std::shared_ptr<Peer>> peers_;
  std::vector<std::thread> setup_threads_;
};

}  // namespace sdg::net

#endif  // SDG_NET_CHANNEL_SERVER_H_
