// ChannelServer: the receiver half of inter-node dataflow edges over TCP.
//
// Listens on one port per node process. Each accepted connection performs the
// synchronous handshake (the on_handshake callback validates the peer and
// returns this node's durable watermark for that source), then streams kData
// frames whose batches are handed to on_batch in wire order — typically
// straight into Deployment::InjectRemote, which routes them through the same
// batched dispatch as local traffic.
//
// Threading model (NetMode::kEventLoop, the default): the listening fd and
// every peer socket live on one shared epoll loop; handshakes run on
// short-lived setup threads (they block on the client, and the client side
// may be an executor task — on a small pool, a handshake-as-task would be a
// circular wait); and each peer owns a Schedulable dispatch entity — the
// loop thread only enqueues raw frames, the executor decodes batches and
// runs on_batch. When
// a peer's frame backlog crosses a high watermark the server drops read
// interest on that socket; the kernel receive buffer fills and TCP flow
// control backpressures the sender — the wire-level equivalent of a full
// mailbox. NetMode::kThreads keeps the original acceptor + setup-thread +
// thread-per-connection design as a measured baseline.
//
// Ack(watermark) broadcasts a kAck on every live connection after the node
// has made the watermark durable (checkpoint persisted); senders trim their
// upstream-backup logs on it. Acks are at-least-once: a lost ack is repaired
// by the watermark carried in the next handshake.
#ifndef SDG_NET_CHANNEL_SERVER_H_
#define SDG_NET_CHANNEL_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/runtime/data_item.h"
#include "src/runtime/executor.h"

namespace sdg::net {

enum class NetMode {
  kEventLoop,  // shared epoll loop + executor dispatch (default)
  kThreads,    // thread-per-connection baseline
};

struct ChannelServerOptions {
  uint16_t port = 0;  // 0 = ephemeral; see port()
  size_t send_queue_frames = 16;
  NetMode mode = NetMode::kEventLoop;
  // Event-loop mode collaborators; nullptr = the process-wide shared ones.
  runtime::Executor* executor = nullptr;
  EventLoop* loop = nullptr;
  // Initial flow-control window (frames in flight) granted to each logical
  // stream of a multiplexed peer. Bounds per-stream backlog on this side —
  // mux streams never pause the shared socket's read interest, so the
  // window is the only thing keeping a hot stream's frames from piling up.
  uint32_t mux_stream_window = 64;
};

class ChannelServer : private EventLoop::Handler {
 public:
  // Returns the durable watermark for the handshaking source (0 if never
  // seen); an error Status rejects the connection with its message.
  using HandshakeFn = std::function<Result<uint64_t>(const Handshake& hs)>;
  // One decoded batch, in wire order, from the connection identified by the
  // handshake. Runs on the peer's executor entity (event-loop mode) or its
  // reader thread (threaded mode); per-source FIFO order is preserved either
  // way, and a slow on_batch backpressures that peer's wire without stalling
  // others.
  using BatchFn =
      std::function<void(const Handshake& hs,
                         std::vector<runtime::DataItem> items)>;
  // Membership: validates a kJoin and returns the member id the joiner is
  // registered under (an error rejects the join with its message). The
  // connection then stays open as that member's control channel.
  using JoinFn = std::function<Result<uint32_t>(const JoinMsg& join)>;
  // A control/reply frame arriving on a member's channel. Runs on the IO
  // thread (event loop or reader), so it must not block — record and notify.
  using MemberFrameFn = std::function<void(uint32_t member_id, Frame frame)>;
  // An inbound migration session (first frame kMigrateBegin). Takes ownership
  // of the socket plus the decoder carrying any bytes already read, and runs
  // the whole session synchronously on the setup thread; sessions are
  // expected to be bounded (the source closes after commit/abort).
  using MigrationFn = std::function<void(Socket socket, FrameDecoder carry,
                                         const MigrateBeginMsg& begin)>;
  // Serve path. A connection whose first frame is a kRequest becomes a client
  // peer: every request (including the first) is decoded off the IO thread on
  // the peer's dispatch entity and handed to on_request, tagged with a
  // server-assigned client id for the response route back. A connection whose
  // first frame is kReplicaSubscribe becomes a replica-feed peer: subsequent
  // kReplicaEpoch frames are decoded the same way and handed to on_feed.
  // Client/feed peers share the wire-backpressure dispatch with data peers.
  using RequestFn = std::function<void(uint64_t client_id, RequestMsg req)>;
  using FeedFn = std::function<void(const ReplicaSubscribeMsg& sub,
                                    ReplicaEpochMsg msg)>;

  explicit ChannelServer(ChannelServerOptions options);
  ~ChannelServer() override;

  ChannelServer(const ChannelServer&) = delete;
  ChannelServer& operator=(const ChannelServer&) = delete;

  // The membership/migration callbacks are optional; without them kJoin and
  // kMigrateBegin connections are dropped (pre-elastic behaviour).
  Status Start(HandshakeFn on_handshake, BatchFn on_batch,
               JoinFn on_join = nullptr, MemberFrameFn on_member = nullptr,
               MigrationFn on_migration = nullptr);

  // Broadcasts the durable watermark to every live sender.
  void Ack(uint64_t watermark);

  // Acks only the senders whose handshake matches (source_task,
  // source_instance) — per-partition watermark spaces stay independent when
  // each partition rides its own channel (or its own mux stream).
  void AckSource(uint32_t source_task, uint32_t source_instance,
                 uint64_t watermark);

  // Batch variant: one call per checkpoint instead of one per source. For a
  // multiplexed peer every matching stream's watermark is coalesced into a
  // single kMuxAckBatch frame; per-channel peers get individual kAcks.
  struct SourceAck {
    uint32_t source_task = 0;
    uint32_t source_instance = 0;
    uint64_t watermark = 0;
  };
  void AckSources(const std::vector<SourceAck>& acks);

  // Sends one control frame on a joined member's channel; false when the
  // member is unknown or its channel is broken/backed up.
  bool SendToMember(uint32_t member_id, FrameType type,
                    const std::vector<uint8_t>& payload);

  size_t MemberCount();

  // Installs the serve-path handlers. May be called after Start (the gateway
  // layers on top of an already-listening head); until it is called, client
  // and feed connections are accepted but any frame they deliver aborts the
  // connection — a silently-eaten feed base would leave every later delta
  // inapplicable, so the peer must redial (and replay) a live gateway.
  void SetServeHandlers(RequestFn on_request, FeedFn on_feed);

  // Sends one kResponse frame back to a connected client. Non-blocking:
  // false when the client is gone or its send queue is full (a slow reader
  // sheds its own responses; the client-side timeout retries).
  bool SendToClient(uint64_t client_id, const std::vector<uint8_t>& payload);

  // Stops accepting, closes every connection, waits out in-flight handshakes
  // and dispatch slices.
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Peer;

  // Per-peer frame dispatch: the loop thread pushes raw frames, the executor
  // decodes and delivers. Crossing kPauseFrames frames pauses the socket's
  // read interest; draining below kResumeFrames resumes it.
  class PeerDispatch : public runtime::Schedulable {
   public:
    // `wire_pause`: whether a deep backlog drops the socket's read interest.
    // Off for mux streams — many streams share one socket, so one slow
    // stream must not stop its siblings' reads; the per-stream credit
    // window bounds the backlog instead. `on_consumed` (may be null) runs
    // after each slice with the number of frames it dispatched — the mux
    // credit-grant hook.
    PeerDispatch(ChannelServer* server, Peer* peer,
                 runtime::Executor* executor, bool wire_pause = true,
                 std::function<void(size_t)> on_consumed = nullptr);
    // Published after the Connection exists (frames can already be arriving
    // by then — pause/resume is just skipped until the pointer lands).
    void SetConnection(Connection* conn) {
      conn_.store(conn, std::memory_order_release);
    }
    void PushFrame(Frame frame);  // loop thread
    // Hold/Release bracket peer installation: while held, PushFrame queues
    // frames but never schedules a slice, so no handler can run (and try to
    // respond through peers_) before the peer is actually in peers_.
    void Hold();
    void Release();
    void Drain();  // close frames source, then AwaitIdle

   protected:
    bool RunSlice() override;

   private:
    static constexpr size_t kPauseFrames = 32;
    static constexpr size_t kResumeFrames = 8;
    static constexpr size_t kFramesPerSlice = 8;

    ChannelServer* const server_;
    Peer* const peer_;
    const bool wire_pause_;
    const std::function<void(size_t)> on_consumed_;
    std::atomic<Connection*> conn_{nullptr};
    std::mutex mu_;
    std::deque<Frame> frames_;
    bool paused_ = false;
    bool closed_ = false;
    bool held_ = false;
  };

  struct Peer {
    Handshake handshake;
    std::unique_ptr<PeerDispatch> dispatch;  // event-loop mode only
    std::unique_ptr<Connection> conn;
    // Membership channel (kJoin) peers carry no data handshake; their frames
    // route to on_member_ instead of the batch path. Also set on a mux reply
    // stream (kind kMuxStreamReply) so its kResponse frames take the same
    // route — off the member control connection, same handler.
    bool is_member = false;
    uint32_t member_id = 0;
    // Serve-path roles (first frame kRequest / kReplicaSubscribe).
    bool is_client = false;
    uint64_t client_id = 0;
    bool is_feed = false;
    ReplicaSubscribeMsg subscribe;
    // Mux parent (first frame kMuxHello): one shared socket carrying many
    // logical streams. Each stream is a child Peer (conn == nullptr, framed
    // through the parent) with its own dispatch entity and credit window.
    // kMuxOpen is handled on a short-lived dedicated thread — never the
    // shared executor, whose workers may be the very tasks blocking on the
    // open-ack; ClosePeer waits out in-flight handlers via the counter.
    bool is_mux = false;
    std::mutex mux_mu;  // guards streams/retired_streams/opens_inflight
    // The Connection constructor registers with the loop, so frames (and the
    // open threads they spawn) can race the `conn` member assignment in
    // SetupMuxPeer; open threads wait for this flag before touching conn.
    bool mux_conn_ready = false;
    uint32_t mux_opens_inflight = 0;
    std::condition_variable mux_open_cv;
    std::map<uint32_t, std::shared_ptr<Peer>> streams;
    // Superseded streams (a reopened channel identity): no longer routed to,
    // but kept alive until ClosePeer so in-flight dispatch slices stay safe.
    std::vector<std::shared_ptr<Peer>> retired_streams;
    // Child-stream fields.
    uint32_t mux_stream = 0;
    uint32_t mux_consumed = 0;  // frames consumed since the last credit grant
  };

  // Event-loop mode: listener readiness (accept until EAGAIN).
  void OnReadable() override;

  void AcceptLoop();  // threaded mode
  // Performs the handshake on a fresh socket and installs the peer; runs on
  // a short-lived setup thread so a slow client cannot stall the acceptor
  // (or, event-loop mode, the loop).
  void SetupPeer(Socket socket);
  // Closes the connection, then drains the dispatch entity. Safe with or
  // without peers_mutex_ held (touches only the peer).
  void ClosePeer(Peer& peer);
  void ReapBrokenPeersLocked();

  // Installs a freshly joined member peer; runs on the setup thread.
  void SetupMember(Socket socket, FrameDecoder carry, const Frame& first);
  // Runs the hello exchange and installs a mux parent peer (setup thread).
  void SetupMuxPeer(Socket socket, FrameDecoder carry, const Frame& first);
  // Loop thread: routes one frame of a mux connection to its stream's
  // dispatch entity (kMuxOpen goes to the parent's control entity).
  void RouteMuxFrame(Peer& peer, Frame frame);
  // Control entity (executor): validates a stream open, installs the child
  // stream Peer, replies with the open-ack carrying watermark + window.
  void HandleMuxOpen(Peer& peer, const Frame& frame);
  // Installs a client or replica-feed peer; runs on the setup thread. The
  // first frame is re-dispatched through the peer's normal frame path so it
  // keeps wire order with whatever the carry decoder already buffered.
  void SetupServePeer(Socket socket, FrameDecoder carry, Frame first);
  // Decodes and routes one frame for any peer kind (dispatch entity in
  // event-loop mode, reader thread in threaded mode).
  void DispatchPeerFrame(Peer& peer, Frame frame);

  const ChannelServerOptions options_;
  HandshakeFn on_handshake_;
  BatchFn on_batch_;
  JoinFn on_join_;
  MemberFrameFn on_member_;
  MigrationFn on_migration_;
  runtime::Executor* executor_ = nullptr;
  EventLoop* loop_ = nullptr;

  Listener listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> accepted_{0};

  std::mutex peers_mutex_;
  std::list<std::shared_ptr<Peer>> peers_;
  std::vector<std::thread> setup_threads_;

  // Serve-path handlers are installed after Start, while connections may
  // already be arriving; reads snapshot the shared_ptr under serve_mutex_.
  struct ServeHandlers {
    RequestFn on_request;
    FeedFn on_feed;
  };
  std::mutex serve_mutex_;
  std::shared_ptr<const ServeHandlers> serve_;
  std::atomic<uint64_t> next_client_id_{1};
};

}  // namespace sdg::net

#endif  // SDG_NET_CHANNEL_SERVER_H_
