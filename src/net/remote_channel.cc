#include "src/net/remote_channel.h"

#include <chrono>
#include <thread>

#include "src/common/logging.h"

namespace sdg::net {

namespace {
// One remote endpoint per channel: the log keys every entry under this
// destination slot.
constexpr uint32_t kRemoteDest = 0;
// Replay re-sends logged entries in frames of this many items.
constexpr size_t kReplayBatch = 512;
}  // namespace

RemoteChannel::RemoteChannel(RemoteChannelOptions options,
                             runtime::OutputBuffer* log)
    : options_(std::move(options)),
      log_(log),
      executor_(options_.executor != nullptr ? options_.executor
                                             : runtime::Executor::Shared()) {}

RemoteChannel::~RemoteChannel() { Close(); }

Status RemoteChannel::Connect() {
  std::lock_guard<std::mutex> lock(send_mutex_);
  return EnsureConnectedLocked();
}

Status RemoteChannel::ConnectLocked() {
  if (options_.mux != nullptr && options_.use_event_loop) {
    Status s = ConnectMuxLocked();
    if (s.ok()) {
      return s;
    }
    stream_.reset();
    // A peer that does not speak mux (or a transient open failure) falls
    // back to the dedicated-socket path below.
    SDG_LOG(kWarning) << "mux dial to " << options_.host << ":"
                      << options_.port
                      << " failed, falling back to per-channel socket: "
                      << s.ToString();
  }
  SDG_ASSIGN_OR_RETURN(Socket sock,
                       Socket::Connect(options_.host, options_.port));
  // Bound the handshake so a wedged receiver cannot pin this thread (which
  // may be an executor worker) indefinitely; cleared before the data path.
  sock.SetRecvTimeout(5000);

  Handshake hs;
  hs.deployment_id = options_.deployment_id;
  hs.source_task = options_.source_task;
  hs.source_instance = options_.source_instance;
  hs.entry = options_.entry;
  hs.emit_clock = 0;
  SDG_RETURN_IF_ERROR(
      WriteFrameBlocking(sock, FrameType::kHandshake, hs.Encode()));

  FrameDecoder carry;
  SDG_ASSIGN_OR_RETURN(Frame reply, ReadFrameBlocking(sock, carry));
  if (reply.type != FrameType::kHandshakeAck) {
    return Status(StatusCode::kDataLoss, "expected handshake ack");
  }
  SDG_ASSIGN_OR_RETURN(HandshakeAck ack, HandshakeAck::Decode(reply.payload));
  if (!ack.accepted) {
    return FailedPreconditionError("handshake rejected: " + ack.message);
  }

  // The watermark in the ack doubles as an ack that may have been lost with
  // the previous connection: trim the log up to it before computing replay.
  log_->Ack(kRemoteDest, ack.acked_ts);
  {
    std::lock_guard<std::mutex> alock(ack_mutex_);
    acked_watermark_ = std::max(acked_watermark_, ack.acked_ts);
  }

  sock.SetRecvTimeout(0);
  Connection::Options copts;
  copts.send_queue_frames = options_.send_queue_frames;
  if (options_.use_event_loop) {
    copts.loop = options_.loop != nullptr ? options_.loop : EventLoop::Shared();
  }
  conn_ = std::make_unique<Connection>(
      std::move(sock), copts, [this](Frame f) { HandleFrame(std::move(f)); },
      [this](const Status& s) {
        SDG_LOG(kWarning) << "remote channel connection failed: "
                          << s.ToString();
        // Heal in the background so an idle sender does not pay the redial
        // on its next Deliver. Deliver's own synchronous repair remains the
        // authoritative path; whichever runs first wins (both serialize on
        // send_mutex_ and the loser sees a healthy connection).
        StartBackgroundReconnect();
      },
      std::move(carry));

  return ReplayLocked(ack.acked_ts);
}

Status RemoteChannel::ConnectMuxLocked() {
  SDG_ASSIGN_OR_RETURN(std::shared_ptr<MuxConnection> mux,
                       options_.mux->Get(options_.host, options_.port));
  MuxOpenMsg open;
  open.kind = kMuxStreamData;
  open.deployment_id = options_.deployment_id;
  open.source_task = options_.source_task;
  open.source_instance = options_.source_instance;
  open.entry = options_.entry;
  open.emit_clock = 0;
  SDG_ASSIGN_OR_RETURN(
      std::shared_ptr<MuxStream> stream,
      mux->OpenStream(
          open, [this](Frame f) { HandleFrame(std::move(f)); },
          [this](const Status& s) {
            SDG_LOG(kWarning)
                << "mux stream failed: " << s.ToString();
            StartBackgroundReconnect();
          }));
  // The open-ack watermark doubles as an ack that may have been lost with
  // the previous connection — exactly the HandshakeAck contract.
  log_->Ack(kRemoteDest, stream->acked_ts());
  {
    std::lock_guard<std::mutex> alock(ack_mutex_);
    acked_watermark_ = std::max(acked_watermark_, stream->acked_ts());
  }
  const uint64_t acked_ts = stream->acked_ts();
  stream_ = std::move(stream);
  return ReplayLocked(acked_ts);
}

// Reconnect-replay (§5): everything logged past the receiver's durable
// watermark goes out again, marked replayed so downstream dedup drops what
// actually arrived the first time.
Status RemoteChannel::ReplayLocked(uint64_t acked_ts) {
  std::vector<runtime::DataItem> pending =
      log_->ItemsAfter(kRemoteDest, acked_ts);
  for (size_t i = 0; i < pending.size(); i += kReplayBatch) {
    std::vector<runtime::DataItem> batch;
    for (size_t j = i; j < std::min(pending.size(), i + kReplayBatch); ++j) {
      runtime::DataItem item = pending[j];
      item.replayed = true;
      batch.push_back(std::move(item));
    }
    if (!SendBatchLocked(batch)) {
      return UnavailableError("connection lost during replay");
    }
  }
  return Status::Ok();
}

Status RemoteChannel::EnsureConnectedLocked() {
  if (closed_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("channel closed");
  }
  if (stream_ != nullptr && !stream_->broken()) {
    return Status::Ok();
  }
  if (conn_ != nullptr && !conn_->broken()) {
    return Status::Ok();
  }
  Status last = UnavailableError("not connected");
  for (int attempt = 0; attempt < std::max(1, options_.reconnect_attempts);
       ++attempt) {
    conn_.reset();
    stream_.reset();
    last = ConnectLocked();
    if (last.ok()) {
      return last;
    }
    conn_.reset();
    stream_.reset();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.reconnect_backoff_ms));
  }
  return last;
}

bool RemoteChannel::SendBatchLocked(
    const std::vector<runtime::DataItem>& items) {
  const bool via_stream = stream_ != nullptr;
  if (via_stream ? stream_->broken()
                 : (conn_ == nullptr || conn_->broken())) {
    return false;
  }
  // The payload is serialized once and handed to the scatter-gather send
  // path by move — the header lives inline in the queue entry, so no frame
  // buffer is ever assembled (the per-frame memcpy the old path paid).
  BinaryWriter payload;
  payload.Write<uint32_t>(static_cast<uint32_t>(items.size()));
  for (const auto& item : items) {
    item.Serialize(payload);
  }
  if (via_stream) {
    return stream_->Send(FrameType::kData, std::move(payload).TakeBuffer());
  }
  return conn_->SendFrame(FrameType::kData, 0,
                          std::move(payload).TakeBuffer());
}

bool RemoteChannel::Deliver(runtime::DataItem item) {
  std::vector<runtime::DataItem> one;
  one.push_back(std::move(item));
  return DeliverAll(std::move(one)) == 1;
}

size_t RemoteChannel::DeliverAll(std::vector<runtime::DataItem>&& items) {
  if (items.empty()) {
    return 0;
  }
  const size_t count = items.size();
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (!EnsureConnectedLocked().ok()) {
    return 0;
  }
  // Log-before-send: once an entry is in the upstream-backup buffer, a lost
  // wire delivery is recoverable by replay, so a Send failure below is not
  // data loss — the next Deliver* reconnects and replays.
  log_->AppendAll(items, kRemoteDest);
  // From here the batch counts as accepted no matter what the wire does:
  // once logged, the items reach the receiver via reconnect-replay, and
  // reporting failure would invite the caller to resend fresh copies whose
  // replayed=false duplicates bypass downstream dedup.
  if (!SendBatchLocked(items)) {
    (void)EnsureConnectedLocked();  // immediate repair attempt (replays)
  }
  return count;
}

void RemoteChannel::HandleFrame(Frame frame) {
  if (frame.type != FrameType::kAck) {
    return;  // data/handshake frames are not expected sender-side
  }
  auto ack = AckMsg::Decode(frame.payload);
  if (!ack.ok()) {
    SDG_LOG(kWarning) << "dropping malformed ack: " << ack.status().ToString();
    return;
  }
  log_->Ack(kRemoteDest, ack->acked_ts);
  std::lock_guard<std::mutex> lock(ack_mutex_);
  acked_watermark_ = std::max(acked_watermark_, ack->acked_ts);
}

uint64_t RemoteChannel::acked_watermark() const {
  std::lock_guard<std::mutex> lock(ack_mutex_);
  return acked_watermark_;
}

void RemoteChannel::StartBackgroundReconnect() {
  if (closed_.load(std::memory_order_acquire)) {
    return;
  }
  if (reconnecting_.exchange(true)) {
    return;  // one round in flight already
  }
  {
    std::lock_guard<std::mutex> lock(reconnect_mutex_);
    ++reconnect_inflight_;
  }
  if (options_.mux != nullptr && options_.use_event_loop) {
    // Mux repair must not ride the shared executor: reopening a stream
    // replays the log, and replay blocks on flow-control credits the
    // receiver grants through ITS executor — an executor task waiting on
    // another executor's progress is how small pools deadlock. But waiting
    // for the next Deliver is not enough either: a reader blocked on data
    // that only this channel's replay can deliver generates no new sends,
    // so the channel would stay broken (and its log unreplayed) forever.
    // A dedicated thread per round — spawned only on connection failure —
    // heals eagerly without touching any executor.
    std::thread([this] { MuxBackgroundReconnect(); }).detach();
    return;
  }
  executor_->Submit([this] { BackgroundReconnect(0); });
}

// One redial attempt per executor task, re-submitted up to the round's
// attempt budget and never beyond it. Each attempt is its own task so the
// worker is RELEASED between attempts — other work (including the receiver's
// own setup, on a shared pool) interleaves, and a permanently-down receiver
// costs bounded worker time rather than pinning a slot for the whole round.
// After the round, the synchronous path in Deliver* owns repair.
void RemoteChannel::BackgroundReconnect(int attempt) {
  bool done = true;
  if (!closed_.load(std::memory_order_acquire)) {
    if (attempt > 0) {
      // Pace redials. Sleeping here briefly occupies the worker; the release
      // point between attempts is what matters for interleaving.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.reconnect_backoff_ms));
    }
    std::lock_guard<std::mutex> lock(send_mutex_);
    const bool healthy = (stream_ != nullptr && !stream_->broken()) ||
                         (conn_ != nullptr && !conn_->broken());
    if (!closed_.load(std::memory_order_acquire) && !healthy) {
      conn_.reset();
      stream_.reset();
      Status s = ConnectLocked();
      if (s.ok()) {
        if (closed_.load(std::memory_order_acquire)) {
          conn_.reset();  // raced with Close: do not leave a live socket
          stream_.reset();
        }
      } else {
        conn_.reset();
        stream_.reset();
        done = attempt + 1 >= std::max(1, options_.reconnect_attempts);
      }
    }
  }
  if (!done) {
    executor_->Submit([this, attempt] { BackgroundReconnect(attempt + 1); });
    return;
  }
  reconnecting_.store(false, std::memory_order_release);
  // Notify under the lock: once Close observes zero it may destroy the
  // channel, so the cv must not be touched after unlock.
  std::lock_guard<std::mutex> lock(reconnect_mutex_);
  --reconnect_inflight_;
  reconnect_cv_.notify_all();
}

// One bounded round of redial attempts, all on this (dedicated) thread.
// Blocking here is fine — replay may stall on flow-control credits until the
// receiver drains — and the round ends early the moment the channel is
// healthy (the synchronous Deliver path may win the race; both serialize on
// send_mutex_).
void RemoteChannel::MuxBackgroundReconnect() {
  for (int attempt = 0; attempt < std::max(1, options_.reconnect_attempts);
       ++attempt) {
    if (closed_.load(std::memory_order_acquire)) {
      break;
    }
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.reconnect_backoff_ms));
    }
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      break;
    }
    if ((stream_ != nullptr && !stream_->broken()) ||
        (conn_ != nullptr && !conn_->broken())) {
      break;
    }
    conn_.reset();
    stream_.reset();
    Status s = ConnectLocked();
    if (s.ok()) {
      if (closed_.load(std::memory_order_acquire)) {
        conn_.reset();  // raced with Close: do not leave a live socket
        stream_.reset();
      }
      break;
    }
    conn_.reset();
    stream_.reset();
  }
  reconnecting_.store(false, std::memory_order_release);
  // Notify under the lock: once Close observes zero it may destroy the
  // channel, so the cv must not be touched after unlock.
  std::lock_guard<std::mutex> lock(reconnect_mutex_);
  --reconnect_inflight_;
  reconnect_cv_.notify_all();
}

void RemoteChannel::Close() {
  closed_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    conn_.reset();
    // Dropping the stream handle detaches this channel; the shared per-peer
    // socket stays up for its sibling channels (the pool owns it).
    stream_.reset();
  }
  std::unique_lock<std::mutex> lock(reconnect_mutex_);
  reconnect_cv_.wait(lock, [this] { return reconnect_inflight_ == 0; });
}

bool RemoteChannel::connected() const {
  std::lock_guard<std::mutex> lock(send_mutex_);
  return (stream_ != nullptr && !stream_->broken()) ||
         (conn_ != nullptr && !conn_->broken());
}

}  // namespace sdg::net
