#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sdg::net {

namespace {

Status Errno(const char* what) {
  return Status(StatusCode::kUnavailable,
                std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect");
  }
  // Frames are already batched; Nagle would only add latency on small acks.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<size_t> Socket::ReadSome(uint8_t* buf, size_t size) {
  for (;;) {
    ssize_t n = ::recv(fd_, buf, size, 0);
    if (n >= 0) {
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    return Errno("recv");
  }
}

Status Socket::WriteAll(const uint8_t* buf, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, buf + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Socket::SetNonBlocking(bool enable) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) {
    return Errno("fcntl(F_GETFL)");
  }
  flags = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Result<size_t> Socket::TryRead(uint8_t* buf, size_t size) {
  for (;;) {
    ssize_t n = ::recv(fd_, buf, size, 0);
    if (n >= 0) {
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return kWouldBlock;
    }
    return Errno("recv");
  }
}

Result<size_t> Socket::TryWrite(const uint8_t* buf, size_t size) {
  for (;;) {
    ssize_t n = ::send(fd_, buf, size, MSG_NOSIGNAL);
    if (n >= 0) {
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return static_cast<size_t>(0);
    }
    return Errno("send");
  }
}

Result<size_t> Socket::TryWritev(const struct iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  for (;;) {
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n >= 0) {
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return static_cast<size_t>(0);
    }
    return Errno("sendmsg");
  }
}

void Socket::SetRecvTimeout(int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  Listener l;
  l.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, 64) != 0) {
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Result<Socket> Listener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    return AbortedError(std::string("accept: ") + std::strerror(errno));
  }
}

Status Listener::SetNonBlocking(bool enable) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) {
    return Errno("fcntl(F_GETFL)");
  }
  flags = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Result<Socket> Listener::TryAccept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // accept() does not inherit O_NONBLOCK: the socket is blocking, which
      // is what the synchronous handshake wants; the data path flips it.
      return Socket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Socket();  // nothing pending; caller checks valid()
    }
    return AbortedError(std::string("accept: ") + std::strerror(errno));
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    // shutdown unblocks a concurrent Accept on Linux; close releases the port.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sdg::net
