// BackupStore: the distributed checkpoint storage of §5 (Fig. 4).
//
// Checkpoint chunks are streamed round-robin to m backup "nodes" — here,
// m directories on disk, each with an optional bandwidth throttle so benches
// can reproduce the paper's disk-bound regime. A thread pool serialises and
// writes chunks in parallel (step B2); restore reads the chunks of an SE
// instance from all m directories in parallel and hands them to the caller,
// which splits them across n recovering instances (steps R1/R2).
#ifndef SDG_CHECKPOINT_BACKUP_STORE_H_
#define SDG_CHECKPOINT_BACKUP_STORE_H_

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/checkpoint/checkpoint_meta.h"

namespace sdg::checkpoint {

struct BackupStoreOptions {
  std::filesystem::path root;
  // m: number of simulated backup nodes (directories).
  uint32_t num_backup_nodes = 2;
  // Per-backup-node I/O throughput cap in bytes/second; 0 disables the
  // throttle. Models the paper's per-disk bandwidth.
  uint64_t throttle_bytes_per_sec = 0;
  // Threads serialising/writing chunks in parallel (step B2).
  size_t io_threads = 4;
  // Test-only fault hook, called around each chunk/meta I/O with the
  // operation ("write_chunk", "read_chunk", "write_meta"), the chunk index
  // (0 for meta), and whether the call is before or after the I/O. A non-OK
  // status makes the store operation fail at exactly that point — chunks
  // already issued are still written, everything later is not — which is how
  // the fault injector simulates "node dies after chunk k is backed up".
  std::function<Status(const char* op, uint32_t index, bool before)> fault_hook;
};

class BackupStore {
 public:
  explicit BackupStore(BackupStoreOptions options);
  ~BackupStore();

  BackupStore(const BackupStore&) = delete;
  BackupStore& operator=(const BackupStore&) = delete;

  // Persists the chunks of one SE instance under (node, epoch, name).
  // Chunk i goes to backup node i % m; writes proceed in parallel.
  Status WriteChunks(uint32_t node, uint64_t epoch, const std::string& name,
                     const std::vector<std::vector<uint8_t>>& chunks);

  // Reads back all chunks of (node, epoch, name), in chunk order. Chunks are
  // fetched from the m backup directories in parallel.
  Result<std::vector<std::vector<uint8_t>>> ReadChunks(uint32_t node,
                                                       uint64_t epoch,
                                                       const std::string& name,
                                                       uint32_t num_chunks);

  // Persists / retrieves checkpoint metadata for (node, epoch).
  Status WriteMeta(uint32_t node, uint64_t epoch, const CheckpointMeta& meta);
  Result<CheckpointMeta> ReadMeta(uint32_t node, uint64_t epoch);

  // Highest epoch for which a complete meta record exists for `node`.
  Result<uint64_t> LatestEpoch(uint32_t node);

  // Removes every epoch of `node` older than `keep_epoch`.
  void PruneBefore(uint32_t node, uint64_t keep_epoch);

  uint32_t num_backup_nodes() const { return options_.num_backup_nodes; }

 private:
  std::filesystem::path ChunkPath(uint32_t backup, uint32_t node,
                                  uint64_t epoch, const std::string& name,
                                  uint32_t chunk_index) const;
  std::filesystem::path MetaPath(uint32_t node, uint64_t epoch) const;

  // Applies the per-backup-node bandwidth throttle for `bytes` of traffic.
  void Throttle(uint32_t backup, size_t bytes);

  Status WriteFile(const std::filesystem::path& path,
                   const std::vector<uint8_t>& bytes);
  Result<std::vector<uint8_t>> ReadFile(const std::filesystem::path& path);

  BackupStoreOptions options_;
  ThreadPool pool_;
  // Token-bucket state per backup node.
  struct BucketState {
    std::mutex mutex;
    int64_t next_free_ns = 0;
  };
  std::vector<std::unique_ptr<BucketState>> buckets_;
};

}  // namespace sdg::checkpoint

#endif  // SDG_CHECKPOINT_BACKUP_STORE_H_
