// BackupStore: the distributed checkpoint storage of §5 (Fig. 4).
//
// Checkpoint chunks are streamed round-robin to m backup "nodes" — here,
// m directories on disk, each with an optional bandwidth throttle so benches
// can reproduce the paper's disk-bound regime. A thread pool serialises and
// writes chunks in parallel (step B2); restore reads the chunks of an SE
// instance from all m directories in parallel and hands them to the caller,
// which splits them across n recovering instances (steps R1/R2).
#ifndef SDG_CHECKPOINT_BACKUP_STORE_H_
#define SDG_CHECKPOINT_BACKUP_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/checkpoint/checkpoint_meta.h"

namespace sdg::checkpoint {

struct BackupStoreOptions {
  std::filesystem::path root;
  // m: number of simulated backup nodes (directories).
  uint32_t num_backup_nodes = 2;
  // Per-backup-node I/O throughput cap in bytes/second; 0 disables the
  // throttle. Models the paper's per-disk bandwidth.
  uint64_t throttle_bytes_per_sec = 0;
  // Threads serialising/writing chunks in parallel (step B2).
  size_t io_threads = 4;
  // Streaming writes: total bytes of queued-but-unwritten segments across all
  // open chunk streams before AppendChunkStream blocks. This bounds the
  // checkpoint path's memory overhead (the paper's no-2x-RSS property).
  uint64_t max_stream_backlog_bytes = 4 * 1024 * 1024;
  // Test-only fault hook, called around each chunk/meta I/O with the
  // operation ("write_chunk", "read_chunk", "write_meta"), the chunk index
  // (0 for meta), and whether the call is before or after the I/O. A non-OK
  // status makes the store operation fail at exactly that point — chunks
  // already issued are still written, everything later is not — which is how
  // the fault injector simulates "node dies after chunk k is backed up".
  std::function<Status(const char* op, uint32_t index, bool before)> fault_hook;
};

class BackupStore {
 public:
  explicit BackupStore(BackupStoreOptions options);
  ~BackupStore();

  BackupStore(const BackupStore&) = delete;
  BackupStore& operator=(const BackupStore&) = delete;

  // Persists the chunks of one SE instance under (node, epoch, name).
  // Chunk i goes to backup node (i + hash(name)) % m — the hash offset keeps
  // single-chunk blobs (TE output buffers) from all landing on backup 0 —
  // and writes proceed in parallel.
  Status WriteChunks(uint32_t node, uint64_t epoch, const std::string& name,
                     const std::vector<std::vector<uint8_t>>& chunks);

  // --- Streaming chunk writes (pipelined checkpoint path) -------------------
  // A chunk stream appends segments to one chunk file, in order, while the
  // serializer keeps producing — overlapping serialization with backup I/O.
  // Segments are drained by the I/O pool; AppendChunkStream blocks once the
  // total backlog across open streams exceeds max_stream_backlog_bytes.
  // Placement matches WriteChunks, so ReadChunks reads streamed chunks back
  // transparently. The fault hook sees "write_chunk" before at Begin and
  // after at Finish, bracketing the chunk exactly like the batch path.
  Result<uint64_t> BeginChunkStream(uint32_t node, uint64_t epoch,
                                    const std::string& name,
                                    uint32_t chunk_index);
  Status AppendChunkStream(uint64_t stream, std::vector<uint8_t> segment);
  // Drains the stream, closes the file and returns the first error seen on
  // the stream (the partial file is harmless: meta is written last).
  Status FinishChunkStream(uint64_t stream);

  // Reads back all chunks of (node, epoch, name), in chunk order. Chunks are
  // fetched from the m backup directories in parallel.
  Result<std::vector<std::vector<uint8_t>>> ReadChunks(uint32_t node,
                                                       uint64_t epoch,
                                                       const std::string& name,
                                                       uint32_t num_chunks);

  // Persists / retrieves checkpoint metadata for (node, epoch).
  Status WriteMeta(uint32_t node, uint64_t epoch, const CheckpointMeta& meta);
  Result<CheckpointMeta> ReadMeta(uint32_t node, uint64_t epoch);

  // Highest epoch for which a complete meta record exists for `node`.
  Result<uint64_t> LatestEpoch(uint32_t node);

  // Removes every epoch of `node` older than `keep_epoch`.
  void PruneBefore(uint32_t node, uint64_t keep_epoch);

  uint32_t num_backup_nodes() const { return options_.num_backup_nodes; }

 private:
  struct ChunkStreamState {
    std::FILE* file = nullptr;
    uint32_t backup = 0;
    uint32_t chunk_index = 0;
    std::filesystem::path path;
    std::deque<std::vector<uint8_t>> pending;
    bool writer_active = false;  // a pool task is draining this stream
    Status error;
    uint64_t bytes_written = 0;
  };

  // Backup directory for chunk `chunk_index` of SE instance `name`.
  uint32_t PlaceBackup(const std::string& name, uint32_t chunk_index) const;

  std::filesystem::path ChunkPath(uint32_t backup, uint32_t node,
                                  uint64_t epoch, const std::string& name,
                                  uint32_t chunk_index) const;
  std::filesystem::path MetaPath(uint32_t node, uint64_t epoch) const;

  // Writes queued segments of `st` until its queue drains (I/O pool).
  void DrainStream(ChunkStreamState* st);

  // Applies the per-backup-node bandwidth throttle for `bytes` of traffic.
  void Throttle(uint32_t backup, size_t bytes);

  Status WriteFile(const std::filesystem::path& path,
                   const std::vector<uint8_t>& bytes);
  Result<std::vector<uint8_t>> ReadFile(const std::filesystem::path& path);

  BackupStoreOptions options_;
  ThreadPool pool_;
  // Token-bucket state per backup node.
  struct BucketState {
    std::mutex mutex;
    int64_t next_free_ns = 0;
  };
  std::vector<std::unique_ptr<BucketState>> buckets_;

  // Streaming state: all guarded by streams_mutex_ except ChunkStreamState
  // fields the draining task owns while writer_active.
  std::mutex streams_mutex_;
  std::condition_variable streams_cv_;
  uint64_t stream_backlog_bytes_ = 0;
  uint64_t next_stream_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<ChunkStreamState>> streams_;
};

}  // namespace sdg::checkpoint

#endif  // SDG_CHECKPOINT_BACKUP_STORE_H_
