#include "src/checkpoint/epoch_tail.h"

#include <utility>

#include "src/checkpoint/chunk_stream.h"

namespace sdg::checkpoint {

Result<std::vector<std::vector<uint8_t>>> SerializeEpochBlobs(
    const state::StateBackend& backend, const std::string& name,
    uint32_t num_chunks, bool delta, uint8_t codec) {
  std::vector<std::vector<uint8_t>> blobs(num_chunks);
  ChunkStreamWriter::Options options;
  options.num_chunks = num_chunks;
  options.codec = codec;
  options.delta = delta;
  ChunkStreamWriter writer(
      [&blobs](uint32_t chunk_index, std::vector<uint8_t> segment) {
        // Segments of one chunk_index concatenate into a valid streamed v2
        // chunk blob (same contract the migration wire path relies on).
        auto& blob = blobs[chunk_index];
        blob.insert(blob.end(), segment.begin(), segment.end());
        return Status::Ok();
      },
      name, options);
  SDG_RETURN_IF_ERROR(writer.Begin());
  if (delta) {
    backend.SerializeDirtyRecords(writer.AsDeltaSink());
  } else {
    backend.SerializeRecords(writer.AsSink());
  }
  SDG_RETURN_IF_ERROR(writer.Finish().status());
  return blobs;
}

}  // namespace sdg::checkpoint
