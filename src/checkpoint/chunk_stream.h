// ChunkStreamWriter: the pipelined serialize→write checkpoint data path.
//
// The materialise-then-write baseline (state::SerializeToChunks followed by
// BackupStore::WriteChunks) holds a full serialised copy of the state in
// memory — 2x state RSS at checkpoint time — and starts backup I/O only
// after the last record is encoded. This writer instead frames records into
// fixed-size segments as SerializeRecords produces them and hands each full
// segment to the BackupStore streaming API, overlapping serialization with
// backup I/O under the store's bounded backlog budget.
//
// Streamed chunks use the v2 frame with a kStreamedRecordCount header (the
// exact count is unknown until the stream closes); readers walk the body to
// the end, and checkpoint completeness is still guaranteed by the epoch meta
// record being written last.
//
// With Options::concurrent set, Add is thread-safe: each chunk owns a
// mutex, so per-shard serialize tasks running on a thread pool can feed the
// same writer concurrently (serial callers skip the per-record lock). Record
// order within a chunk is not semantically meaningful — full chunks are
// keyed records restored into a map, delta chunks contain each key at most
// once per epoch, and the prefix-dedup codec is an order-agnostic
// prev-record context on both sides — so any interleaving produces a valid
// (byte-different, state-identical) chunk.
#ifndef SDG_CHECKPOINT_CHUNK_STREAM_H_
#define SDG_CHECKPOINT_CHUNK_STREAM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/checkpoint/backup_store.h"
#include "src/state/chunk.h"
#include "src/state/state_backend.h"

namespace sdg::checkpoint {

class ChunkStreamWriter {
 public:
  struct Options {
    uint32_t num_chunks = 1;
    uint8_t codec = 0;   // state::kChunkCodec*
    bool delta = false;  // emit a delta chunk (tombstones allowed)
    // Segment handed to the backup store once a chunk's buffer reaches this
    // size. Small enough to keep the pipeline busy, large enough to amortise
    // the per-append queue hop.
    size_t segment_bytes = 256 * 1024;
    // Whether Add may be called from multiple threads (the per-shard
    // serialize fan-out). Serial callers keep this false and skip the
    // per-record chunk mutex.
    bool concurrent = false;
  };

  struct Stats {
    uint64_t records = 0;
    uint64_t tombstones = 0;
    uint64_t bytes = 0;  // framed bytes across all chunks, headers included
  };

  ChunkStreamWriter(BackupStore& store, uint32_t node, uint64_t epoch,
                    std::string name, Options options);

  // Remote-sink mode: full segments go to `sink(chunk_index, segment)`
  // instead of the backup store — the live-migration path streams them as
  // kMigrateChunk frames while the source keeps serving. Segments of one
  // chunk_index concatenate (in emission order) into a valid streamed v2
  // chunk blob; a sink error is latched and surfaced by Finish.
  using SegmentSink =
      std::function<Status(uint32_t chunk_index, std::vector<uint8_t> segment)>;
  ChunkStreamWriter(SegmentSink sink, std::string name, Options options);

  // Opens the per-chunk streams and writes their headers. Must be called
  // (and succeed) before Add. Not thread-safe (call before fanning out).
  Status Begin();

  // Routes one record to its chunk (key_hash % num_chunks) and flushes the
  // chunk's segment when full. Thread-safe when Options::concurrent is set.
  // Errors are latched and surfaced by Finish — the record sinks of the
  // state backends cannot fail mid-iteration.
  void Add(uint64_t key_hash, const uint8_t* payload, size_t size,
           bool tombstone);

  state::RecordSink AsSink();
  state::DeltaRecordSink AsDeltaSink();

  // Flushes the tail segments and closes every stream. Not thread-safe (call
  // after the fan-out has joined).
  Result<Stats> Finish();

 private:
  struct PerChunk {
    std::mutex mutex;
    uint64_t stream_id = 0;
    std::vector<uint8_t> buffer;
    std::vector<uint8_t> prev_payload;  // prefix-dedup context
    // Chunk-local stats, summed by Finish — no shared counters on the path.
    uint64_t records = 0;
    uint64_t tombstones = 0;
    uint64_t bytes = 0;
  };

  // Caller holds chunk.mutex.
  void FlushChunkLocked(PerChunk& chunk, uint32_t chunk_index);
  void LatchError(const Status& s);

  BackupStore* store_ = nullptr;  // null in remote-sink mode
  SegmentSink sink_;              // null in store mode
  uint32_t node_ = 0;
  uint64_t epoch_ = 0;
  std::string name_;
  Options options_;
  state::ChunkOptions chunk_options_;
  std::vector<std::unique_ptr<PerChunk>> chunks_;
  std::atomic<bool> has_error_{false};
  std::mutex error_mutex_;
  Status error_;
  bool begun_ = false;
};

}  // namespace sdg::checkpoint

#endif  // SDG_CHECKPOINT_CHUNK_STREAM_H_
