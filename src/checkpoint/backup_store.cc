#include "src/checkpoint/backup_store.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/logging.h"

namespace sdg::checkpoint {

namespace fs = std::filesystem;

BackupStore::BackupStore(BackupStoreOptions options)
    : options_(std::move(options)), pool_(options_.io_threads) {
  SDG_CHECK(options_.num_backup_nodes > 0) << "backup store needs m >= 1";
  for (uint32_t i = 0; i < options_.num_backup_nodes; ++i) {
    buckets_.push_back(std::make_unique<BucketState>());
    std::error_code ec;
    fs::create_directories(options_.root / ("backup" + std::to_string(i)), ec);
  }
  std::error_code ec;
  fs::create_directories(options_.root / "meta", ec);
}

BackupStore::~BackupStore() {
  pool_.Wait();
  for (auto& [id, st] : streams_) {
    if (st->file != nullptr) {
      std::fclose(st->file);  // leaked stream: partial file, meta never written
    }
  }
}

uint32_t BackupStore::PlaceBackup(const std::string& name,
                                  uint32_t chunk_index) const {
  // Offsetting the round-robin by a name hash spreads single-chunk blobs
  // (every TE output buffer) across the m backup nodes instead of piling
  // them all on backup 0.
  return static_cast<uint32_t>((chunk_index + Fnv1a64(name)) %
                               options_.num_backup_nodes);
}

fs::path BackupStore::ChunkPath(uint32_t backup, uint32_t node, uint64_t epoch,
                                const std::string& name,
                                uint32_t chunk_index) const {
  return options_.root / ("backup" + std::to_string(backup)) /
         ("node" + std::to_string(node) + "_epoch" + std::to_string(epoch) +
          "_" + name + "_chunk" + std::to_string(chunk_index) + ".bin");
}

fs::path BackupStore::MetaPath(uint32_t node, uint64_t epoch) const {
  return options_.root / "meta" /
         ("node" + std::to_string(node) + "_epoch" + std::to_string(epoch) +
          ".meta");
}

void BackupStore::Throttle(uint32_t backup, size_t bytes) {
  if (options_.throttle_bytes_per_sec == 0) {
    return;
  }
  auto& bucket = *buckets_[backup % buckets_.size()];
  int64_t cost_ns = static_cast<int64_t>(
      1e9 * static_cast<double>(bytes) /
      static_cast<double>(options_.throttle_bytes_per_sec));
  int64_t wait_until;
  {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    int64_t now = Stopwatch::NowNanos();
    int64_t start = std::max(now, bucket.next_free_ns);
    bucket.next_free_ns = start + cost_ns;
    wait_until = bucket.next_free_ns;
  }
  int64_t now = Stopwatch::NowNanos();
  if (wait_until > now) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(wait_until - now));
  }
}

Status BackupStore::WriteFile(const fs::path& path,
                              const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return UnavailableError("cannot open " + path.string() + " for writing");
  }
  size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int rc = std::fclose(f);
  if (written != bytes.size() || rc != 0) {
    return DataLossError("short write to " + path.string());
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> BackupStore::ReadFile(const fs::path& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open " + path.string());
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return DataLossError("short read from " + path.string());
  }
  return bytes;
}

Status BackupStore::WriteChunks(uint32_t node, uint64_t epoch,
                                const std::string& name,
                                const std::vector<std::vector<uint8_t>>& chunks) {
  std::mutex status_mutex;
  Status first_error;
  for (uint32_t i = 0; i < chunks.size(); ++i) {
    // The fault hook runs in this sequential issue loop (not in the pool) so
    // "crash after chunk k" is deterministic: chunks before the failure point
    // are flushed by the Wait below, chunks after it are never issued.
    if (options_.fault_hook) {
      Status s = options_.fault_hook("write_chunk", i, /*before=*/true);
      if (!s.ok()) {
        pool_.Wait();
        return s;
      }
    }
    // Hash-offset round-robin over the m backup nodes (step B3 of Fig. 4).
    uint32_t backup = PlaceBackup(name, i);
    const auto& chunk = chunks[i];
    fs::path path = ChunkPath(backup, node, epoch, name, i);
    pool_.Submit([this, backup, path, &chunk, &status_mutex, &first_error] {
      Throttle(backup, chunk.size());
      Status s = WriteFile(path, chunk);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(status_mutex);
        if (first_error.ok()) {
          first_error = s;
        }
      }
    });
    if (options_.fault_hook) {
      Status s = options_.fault_hook("write_chunk", i, /*before=*/false);
      if (!s.ok()) {
        pool_.Wait();
        return s;
      }
    }
  }
  pool_.Wait();
  return first_error;
}

Result<uint64_t> BackupStore::BeginChunkStream(uint32_t node, uint64_t epoch,
                                               const std::string& name,
                                               uint32_t chunk_index) {
  if (options_.fault_hook) {
    SDG_RETURN_IF_ERROR(
        options_.fault_hook("write_chunk", chunk_index, /*before=*/true));
  }
  auto st = std::make_unique<ChunkStreamState>();
  st->backup = PlaceBackup(name, chunk_index);
  st->chunk_index = chunk_index;
  st->path = ChunkPath(st->backup, node, epoch, name, chunk_index);
  st->file = std::fopen(st->path.c_str(), "wb");
  if (st->file == nullptr) {
    return UnavailableError("cannot open " + st->path.string() +
                            " for streaming");
  }
  std::lock_guard<std::mutex> lock(streams_mutex_);
  uint64_t id = next_stream_id_++;
  streams_[id] = std::move(st);
  return id;
}

Status BackupStore::AppendChunkStream(uint64_t stream,
                                      std::vector<uint8_t> segment) {
  if (segment.empty()) {
    return Status::Ok();
  }
  std::unique_lock<std::mutex> lock(streams_mutex_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return InvalidArgumentError("unknown chunk stream");
  }
  ChunkStreamState* st = it->second.get();
  if (!st->error.ok()) {
    return st->error;
  }
  // Backpressure: bound the serialised-but-unwritten bytes across all open
  // streams so a fast serializer cannot re-materialise the state in memory.
  streams_cv_.wait(lock, [this] {
    return stream_backlog_bytes_ < options_.max_stream_backlog_bytes;
  });
  stream_backlog_bytes_ += segment.size();
  st->pending.push_back(std::move(segment));
  if (!st->writer_active) {
    st->writer_active = true;
    pool_.Submit([this, st] { DrainStream(st); });
  }
  return Status::Ok();
}

void BackupStore::DrainStream(ChunkStreamState* st) {
  std::unique_lock<std::mutex> lock(streams_mutex_);
  while (!st->pending.empty()) {
    std::vector<uint8_t> segment = std::move(st->pending.front());
    st->pending.pop_front();
    lock.unlock();
    Throttle(st->backup, segment.size());
    size_t written =
        std::fwrite(segment.data(), 1, segment.size(), st->file);
    lock.lock();
    stream_backlog_bytes_ -= segment.size();
    if (written != segment.size() && st->error.ok()) {
      st->error = DataLossError("short write to " + st->path.string());
    }
    st->bytes_written += written;
    streams_cv_.notify_all();
  }
  st->writer_active = false;
  streams_cv_.notify_all();
}

Status BackupStore::FinishChunkStream(uint64_t stream) {
  std::unique_ptr<ChunkStreamState> st;
  {
    std::unique_lock<std::mutex> lock(streams_mutex_);
    auto it = streams_.find(stream);
    if (it == streams_.end()) {
      return InvalidArgumentError("unknown chunk stream");
    }
    ChunkStreamState* raw = it->second.get();
    streams_cv_.wait(lock, [raw] {
      return !raw->writer_active && raw->pending.empty();
    });
    st = std::move(it->second);
    streams_.erase(it);
  }
  int rc = std::fclose(st->file);
  st->file = nullptr;
  if (!st->error.ok()) {
    return st->error;
  }
  if (rc != 0) {
    return DataLossError("close failed for " + st->path.string());
  }
  if (options_.fault_hook) {
    SDG_RETURN_IF_ERROR(
        options_.fault_hook("write_chunk", st->chunk_index, /*before=*/false));
  }
  return Status::Ok();
}

Result<std::vector<std::vector<uint8_t>>> BackupStore::ReadChunks(
    uint32_t node, uint64_t epoch, const std::string& name,
    uint32_t num_chunks) {
  std::vector<std::vector<uint8_t>> chunks(num_chunks);
  std::mutex status_mutex;
  Status first_error;
  for (uint32_t i = 0; i < num_chunks; ++i) {
    if (options_.fault_hook) {
      Status s = options_.fault_hook("read_chunk", i, /*before=*/true);
      if (!s.ok()) {
        pool_.Wait();
        return s;
      }
    }
    uint32_t backup = PlaceBackup(name, i);
    fs::path path = ChunkPath(backup, node, epoch, name, i);
    pool_.Submit([this, backup, path, i, &chunks, &status_mutex, &first_error] {
      auto bytes = ReadFile(path);
      if (bytes.ok()) {
        Throttle(backup, bytes->size());
        chunks[i] = std::move(*bytes);
      } else {
        std::lock_guard<std::mutex> lock(status_mutex);
        if (first_error.ok()) {
          first_error = bytes.status();
        }
      }
    });
    if (options_.fault_hook) {
      Status s = options_.fault_hook("read_chunk", i, /*before=*/false);
      if (!s.ok()) {
        pool_.Wait();
        return s;
      }
    }
  }
  pool_.Wait();
  if (!first_error.ok()) {
    return first_error;
  }
  return chunks;
}

Status BackupStore::WriteMeta(uint32_t node, uint64_t epoch,
                              const CheckpointMeta& meta) {
  if (options_.fault_hook) {
    SDG_RETURN_IF_ERROR(options_.fault_hook("write_meta", 0, /*before=*/true));
  }
  SDG_RETURN_IF_ERROR(WriteFile(MetaPath(node, epoch), meta.ToBytes()));
  // A failure here reports an error although the meta record is durable: the
  // checkpoint is complete but the checkpointing node never learns it.
  if (options_.fault_hook) {
    SDG_RETURN_IF_ERROR(options_.fault_hook("write_meta", 0, /*before=*/false));
  }
  return Status::Ok();
}

Result<CheckpointMeta> BackupStore::ReadMeta(uint32_t node, uint64_t epoch) {
  SDG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       ReadFile(MetaPath(node, epoch)));
  return CheckpointMeta::FromBytes(bytes);
}

Result<uint64_t> BackupStore::LatestEpoch(uint32_t node) {
  // The meta file is written last, so its presence marks a complete
  // checkpoint; scan for the highest epoch.
  uint64_t best = 0;
  bool found = false;
  std::string prefix = "node" + std::to_string(node) + "_epoch";
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(options_.root / "meta", ec)) {
    std::string fname = entry.path().filename().string();
    if (fname.rfind(prefix, 0) != 0) {
      continue;
    }
    uint64_t epoch = std::strtoull(fname.c_str() + prefix.size(), nullptr, 10);
    if (!found || epoch > best) {
      best = epoch;
      found = true;
    }
  }
  if (!found) {
    return NotFoundError("no checkpoint for node " + std::to_string(node));
  }
  return best;
}

void BackupStore::PruneBefore(uint32_t node, uint64_t keep_epoch) {
  std::string node_prefix = "node" + std::to_string(node) + "_epoch";
  auto epoch_of = [&](const std::string& fname) -> uint64_t {
    return std::strtoull(fname.c_str() + node_prefix.size(), nullptr, 10);
  };
  std::error_code ec;
  for (uint32_t b = 0; b < options_.num_backup_nodes; ++b) {
    fs::path dir = options_.root / ("backup" + std::to_string(b));
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      std::string fname = entry.path().filename().string();
      if (fname.rfind(node_prefix, 0) == 0 && epoch_of(fname) < keep_epoch) {
        fs::remove(entry.path(), ec);
      }
    }
  }
  for (const auto& entry :
       fs::directory_iterator(options_.root / "meta", ec)) {
    std::string fname = entry.path().filename().string();
    if (fname.rfind(node_prefix, 0) == 0 && epoch_of(fname) < keep_epoch) {
      fs::remove(entry.path(), ec);
    }
  }
}

}  // namespace sdg::checkpoint
