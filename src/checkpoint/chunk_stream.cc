#include "src/checkpoint/chunk_stream.h"

#include <utility>

#include "src/common/logging.h"
#include "src/state/codec.h"

namespace sdg::checkpoint {

ChunkStreamWriter::ChunkStreamWriter(BackupStore& store, uint32_t node,
                                     uint64_t epoch, std::string name,
                                     Options options)
    : store_(&store),
      node_(node),
      epoch_(epoch),
      name_(std::move(name)),
      options_(options) {
  SDG_CHECK(options_.num_chunks > 0) << "chunk stream needs >= 1 chunk";
  SDG_CHECK(options_.segment_bytes > 0) << "chunk stream needs a segment size";
  // Streamed chunks need the v2 frame: the header record count is the
  // kStreamedRecordCount sentinel, unknown until the stream closes.
  chunk_options_.version = state::kChunkVersion2;
  chunk_options_.codec = options_.codec;
  chunk_options_.delta = options_.delta;
}

ChunkStreamWriter::ChunkStreamWriter(SegmentSink sink, std::string name,
                                     Options options)
    : sink_(std::move(sink)), name_(std::move(name)), options_(options) {
  SDG_CHECK(sink_) << "chunk stream sink mode needs a sink";
  SDG_CHECK(options_.num_chunks > 0) << "chunk stream needs >= 1 chunk";
  SDG_CHECK(options_.segment_bytes > 0) << "chunk stream needs a segment size";
  chunk_options_.version = state::kChunkVersion2;
  chunk_options_.codec = options_.codec;
  chunk_options_.delta = options_.delta;
}

Status ChunkStreamWriter::Begin() {
  SDG_CHECK(!begun_) << "chunk stream writer already begun";
  begun_ = true;
  chunks_.reserve(options_.num_chunks);
  for (uint32_t i = 0; i < options_.num_chunks; ++i) {
    chunks_.push_back(std::make_unique<PerChunk>());
    PerChunk& chunk = *chunks_.back();
    if (store_ != nullptr) {
      SDG_ASSIGN_OR_RETURN(chunk.stream_id,
                           store_->BeginChunkStream(node_, epoch_, name_, i));
    }
    chunk.buffer = state::BuildChunkHeader(chunk_options_, name_,
                                           state::kStreamedRecordCount);
    chunk.bytes += chunk.buffer.size();
    chunk.buffer.reserve(options_.segment_bytes + 1024);
  }
  return Status::Ok();
}

void ChunkStreamWriter::Add(uint64_t key_hash, const uint8_t* payload,
                            size_t size, bool tombstone) {
  if (has_error_.load(std::memory_order_relaxed)) {
    return;
  }
  uint32_t chunk_index = static_cast<uint32_t>(key_hash % options_.num_chunks);
  PerChunk& chunk = *chunks_[chunk_index];
  std::unique_lock<std::mutex> lock(chunk.mutex, std::defer_lock);
  if (options_.concurrent) {
    lock.lock();
  }
  size_t before = chunk.buffer.size();
  state::AppendRecordFrame(chunk_options_, key_hash, payload, size, tombstone,
                           chunk.buffer, chunk.prev_payload);
  chunk.bytes += chunk.buffer.size() - before;
  ++chunk.records;
  if (tombstone) {
    ++chunk.tombstones;
  }
  if (chunk.buffer.size() >= options_.segment_bytes) {
    FlushChunkLocked(chunk, chunk_index);
  }
}

void ChunkStreamWriter::FlushChunkLocked(PerChunk& chunk,
                                         uint32_t chunk_index) {
  if (chunk.buffer.empty()) {
    return;
  }
  std::vector<uint8_t> segment = std::move(chunk.buffer);
  chunk.buffer.clear();
  chunk.buffer.reserve(options_.segment_bytes + 1024);
  // AppendChunkStream (and a well-behaved sink) is thread-safe and may block
  // on its backlog budget; holding this chunk's mutex only stalls records
  // routed to the same chunk, the rest of the fan-out keeps serialising.
  Status s = store_ != nullptr
                 ? store_->AppendChunkStream(chunk.stream_id,
                                             std::move(segment))
                 : sink_(chunk_index, std::move(segment));
  if (!s.ok()) {
    LatchError(s);
  }
}

void ChunkStreamWriter::LatchError(const Status& s) {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (error_.ok()) {
    error_ = s;
    has_error_.store(true, std::memory_order_relaxed);
  }
}

state::RecordSink ChunkStreamWriter::AsSink() {
  return [this](uint64_t key_hash, const uint8_t* payload, size_t size) {
    Add(key_hash, payload, size, /*tombstone=*/false);
  };
}

state::DeltaRecordSink ChunkStreamWriter::AsDeltaSink() {
  return [this](uint64_t key_hash, const uint8_t* payload, size_t size,
                bool tombstone) { Add(key_hash, payload, size, tombstone); };
}

Result<ChunkStreamWriter::Stats> ChunkStreamWriter::Finish() {
  SDG_CHECK(begun_) << "Finish before Begin on chunk stream writer";
  Stats stats;
  for (uint32_t i = 0; i < chunks_.size(); ++i) {
    PerChunk& chunk = *chunks_[i];
    std::lock_guard<std::mutex> lock(chunk.mutex);
    FlushChunkLocked(chunk, i);
    stats.records += chunk.records;
    stats.tombstones += chunk.tombstones;
    stats.bytes += chunk.bytes;
  }
  // Close every stream even after an error so no stream handles leak.
  if (store_ != nullptr) {
    for (auto& chunk : chunks_) {
      Status s = store_->FinishChunkStream(chunk->stream_id);
      if (!s.ok()) {
        LatchError(s);
      }
    }
  }
  if (has_error_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    return error_;
  }
  return stats;
}

}  // namespace sdg::checkpoint
