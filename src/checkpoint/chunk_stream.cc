#include "src/checkpoint/chunk_stream.h"

#include <utility>

#include "src/common/logging.h"
#include "src/state/codec.h"

namespace sdg::checkpoint {

ChunkStreamWriter::ChunkStreamWriter(BackupStore& store, uint32_t node,
                                     uint64_t epoch, std::string name,
                                     Options options)
    : store_(store),
      node_(node),
      epoch_(epoch),
      name_(std::move(name)),
      options_(options) {
  SDG_CHECK(options_.num_chunks > 0) << "chunk stream needs >= 1 chunk";
  SDG_CHECK(options_.segment_bytes > 0) << "chunk stream needs a segment size";
  // Streamed chunks need the v2 frame: the header record count is the
  // kStreamedRecordCount sentinel, unknown until the stream closes.
  chunk_options_.version = state::kChunkVersion2;
  chunk_options_.codec = options_.codec;
  chunk_options_.delta = options_.delta;
}

Status ChunkStreamWriter::Begin() {
  SDG_CHECK(!begun_) << "chunk stream writer already begun";
  begun_ = true;
  chunks_.resize(options_.num_chunks);
  for (uint32_t i = 0; i < options_.num_chunks; ++i) {
    SDG_ASSIGN_OR_RETURN(chunks_[i].stream_id,
                         store_.BeginChunkStream(node_, epoch_, name_, i));
    chunks_[i].buffer = state::BuildChunkHeader(chunk_options_, name_,
                                                state::kStreamedRecordCount);
    stats_.bytes += chunks_[i].buffer.size();
    chunks_[i].buffer.reserve(options_.segment_bytes + 1024);
  }
  return Status::Ok();
}

void ChunkStreamWriter::Add(uint64_t key_hash, const uint8_t* payload,
                            size_t size, bool tombstone) {
  if (!error_.ok()) {
    return;
  }
  PerChunk& chunk = chunks_[key_hash % options_.num_chunks];
  size_t before = chunk.buffer.size();
  state::AppendRecordFrame(chunk_options_, key_hash, payload, size, tombstone,
                           chunk.buffer, chunk.prev_payload);
  stats_.bytes += chunk.buffer.size() - before;
  ++stats_.records;
  if (tombstone) {
    ++stats_.tombstones;
  }
  if (chunk.buffer.size() >= options_.segment_bytes) {
    FlushChunk(chunk);
  }
}

void ChunkStreamWriter::FlushChunk(PerChunk& chunk) {
  if (chunk.buffer.empty()) {
    return;
  }
  std::vector<uint8_t> segment = std::move(chunk.buffer);
  chunk.buffer.clear();
  chunk.buffer.reserve(options_.segment_bytes + 1024);
  Status s = store_.AppendChunkStream(chunk.stream_id, std::move(segment));
  if (!s.ok() && error_.ok()) {
    error_ = s;
  }
}

state::RecordSink ChunkStreamWriter::AsSink() {
  return [this](uint64_t key_hash, const uint8_t* payload, size_t size) {
    Add(key_hash, payload, size, /*tombstone=*/false);
  };
}

state::DeltaRecordSink ChunkStreamWriter::AsDeltaSink() {
  return [this](uint64_t key_hash, const uint8_t* payload, size_t size,
                bool tombstone) { Add(key_hash, payload, size, tombstone); };
}

Result<ChunkStreamWriter::Stats> ChunkStreamWriter::Finish() {
  SDG_CHECK(begun_) << "Finish before Begin on chunk stream writer";
  for (PerChunk& chunk : chunks_) {
    FlushChunk(chunk);
  }
  // Close every stream even after an error so no stream handles leak.
  for (PerChunk& chunk : chunks_) {
    Status s = store_.FinishChunkStream(chunk.stream_id);
    if (!s.ok() && error_.ok()) {
      error_ = s;
    }
  }
  if (!error_.ok()) {
    return error_;
  }
  return stats_;
}

}  // namespace sdg::checkpoint
