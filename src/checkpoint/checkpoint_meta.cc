#include "src/checkpoint/checkpoint_meta.h"

namespace sdg::checkpoint {

void CheckpointMeta::Serialize(BinaryWriter& w) const {
  w.Write<uint64_t>(epoch);
  w.Write<uint32_t>(static_cast<uint32_t>(tasks.size()));
  for (const auto& t : tasks) {
    w.Write<uint32_t>(t.task);
    w.Write<uint32_t>(t.instance);
    w.Write<uint64_t>(t.emit_clock);
    w.Write<uint32_t>(static_cast<uint32_t>(t.last_seen.size()));
    for (const auto& s : t.last_seen) {
      w.Write<uint32_t>(s.task);
      w.Write<uint32_t>(s.instance);
      w.Write<uint64_t>(s.ts);
    }
  }
  w.Write<uint32_t>(static_cast<uint32_t>(states.size()));
  for (const auto& s : states) {
    w.Write<uint32_t>(s.state);
    w.Write<uint32_t>(s.instance);
    w.Write<uint32_t>(s.num_chunks);
    w.Write<uint64_t>(s.record_count);
  }
}

Result<CheckpointMeta> CheckpointMeta::Deserialize(BinaryReader& r) {
  CheckpointMeta m;
  SDG_ASSIGN_OR_RETURN(m.epoch, r.Read<uint64_t>());
  SDG_ASSIGN_OR_RETURN(uint32_t num_tasks, r.Read<uint32_t>());
  m.tasks.reserve(std::min<size_t>(num_tasks, r.remaining()));
  for (uint32_t i = 0; i < num_tasks; ++i) {
    TaskInstanceMeta t;
    SDG_ASSIGN_OR_RETURN(t.task, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(t.instance, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(t.emit_clock, r.Read<uint64_t>());
    SDG_ASSIGN_OR_RETURN(uint32_t num_seen, r.Read<uint32_t>());
    t.last_seen.reserve(std::min<size_t>(num_seen, r.remaining()));
    for (uint32_t j = 0; j < num_seen; ++j) {
      SourceTimestamp s;
      SDG_ASSIGN_OR_RETURN(s.task, r.Read<uint32_t>());
      SDG_ASSIGN_OR_RETURN(s.instance, r.Read<uint32_t>());
      SDG_ASSIGN_OR_RETURN(s.ts, r.Read<uint64_t>());
      t.last_seen.push_back(s);
    }
    m.tasks.push_back(std::move(t));
  }
  SDG_ASSIGN_OR_RETURN(uint32_t num_states, r.Read<uint32_t>());
  m.states.reserve(std::min<size_t>(num_states, r.remaining()));
  for (uint32_t i = 0; i < num_states; ++i) {
    StateInstanceMeta s;
    SDG_ASSIGN_OR_RETURN(s.state, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(s.instance, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(s.num_chunks, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(s.record_count, r.Read<uint64_t>());
    m.states.push_back(s);
  }
  return m;
}

std::vector<uint8_t> CheckpointMeta::ToBytes() const {
  BinaryWriter w;
  Serialize(w);
  return std::move(w).TakeBuffer();
}

Result<CheckpointMeta> CheckpointMeta::FromBytes(const std::vector<uint8_t>& bytes) {
  BinaryReader r(bytes);
  return Deserialize(r);
}

}  // namespace sdg::checkpoint
