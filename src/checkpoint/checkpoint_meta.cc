#include "src/checkpoint/checkpoint_meta.h"

namespace sdg::checkpoint {

uint64_t CheckpointMeta::MinChainEpoch() const {
  uint64_t min_epoch = epoch;
  for (const auto& s : states) {
    for (const auto& link : s.chain) {
      min_epoch = std::min(min_epoch, link.epoch);
    }
  }
  return min_epoch;
}

void CheckpointMeta::Serialize(BinaryWriter& w) const {
  w.Write<uint32_t>(kMetaMagic);
  w.Write<uint32_t>(kMetaVersion2);
  w.Write<uint64_t>(epoch);
  w.Write<uint32_t>(static_cast<uint32_t>(tasks.size()));
  for (const auto& t : tasks) {
    w.Write<uint32_t>(t.task);
    w.Write<uint32_t>(t.instance);
    w.Write<uint64_t>(t.emit_clock);
    w.Write<uint32_t>(static_cast<uint32_t>(t.last_seen.size()));
    for (const auto& s : t.last_seen) {
      w.Write<uint32_t>(s.task);
      w.Write<uint32_t>(s.instance);
      w.Write<uint64_t>(s.ts);
    }
  }
  w.Write<uint32_t>(static_cast<uint32_t>(states.size()));
  for (const auto& s : states) {
    w.Write<uint32_t>(s.state);
    w.Write<uint32_t>(s.instance);
    w.Write<uint32_t>(s.num_chunks);
    w.Write<uint64_t>(s.record_count);
    w.Write<uint8_t>(static_cast<uint8_t>(s.kind));
    w.Write<uint64_t>(s.base_epoch);
    w.Write<uint32_t>(static_cast<uint32_t>(s.chain.size()));
    for (const auto& link : s.chain) {
      w.Write<uint64_t>(link.epoch);
      w.Write<uint32_t>(link.num_chunks);
      w.Write<uint8_t>(static_cast<uint8_t>(link.kind));
    }
  }
}

Result<CheckpointMeta> CheckpointMeta::Deserialize(BinaryReader& r) {
  CheckpointMeta m;
  uint32_t version = 1;
  SDG_ASSIGN_OR_RETURN(uint32_t head, r.Read<uint32_t>());
  if (head == kMetaMagic) {
    SDG_ASSIGN_OR_RETURN(version, r.Read<uint32_t>());
    if (version != kMetaVersion2) {
      return Status(StatusCode::kDataLoss, "unsupported meta version");
    }
    SDG_ASSIGN_OR_RETURN(m.epoch, r.Read<uint64_t>());
  } else {
    // v1: no magic, the first u64 is the epoch whose low half we just read.
    SDG_ASSIGN_OR_RETURN(uint32_t high, r.Read<uint32_t>());
    m.epoch = (static_cast<uint64_t>(high) << 32) | head;
  }
  SDG_ASSIGN_OR_RETURN(uint32_t num_tasks, r.Read<uint32_t>());
  m.tasks.reserve(std::min<size_t>(num_tasks, r.remaining()));
  for (uint32_t i = 0; i < num_tasks; ++i) {
    TaskInstanceMeta t;
    SDG_ASSIGN_OR_RETURN(t.task, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(t.instance, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(t.emit_clock, r.Read<uint64_t>());
    SDG_ASSIGN_OR_RETURN(uint32_t num_seen, r.Read<uint32_t>());
    t.last_seen.reserve(std::min<size_t>(num_seen, r.remaining()));
    for (uint32_t j = 0; j < num_seen; ++j) {
      SourceTimestamp s;
      SDG_ASSIGN_OR_RETURN(s.task, r.Read<uint32_t>());
      SDG_ASSIGN_OR_RETURN(s.instance, r.Read<uint32_t>());
      SDG_ASSIGN_OR_RETURN(s.ts, r.Read<uint64_t>());
      t.last_seen.push_back(s);
    }
    m.tasks.push_back(std::move(t));
  }
  SDG_ASSIGN_OR_RETURN(uint32_t num_states, r.Read<uint32_t>());
  m.states.reserve(std::min<size_t>(num_states, r.remaining()));
  for (uint32_t i = 0; i < num_states; ++i) {
    StateInstanceMeta s;
    SDG_ASSIGN_OR_RETURN(s.state, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(s.instance, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(s.num_chunks, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(s.record_count, r.Read<uint64_t>());
    if (version >= kMetaVersion2) {
      SDG_ASSIGN_OR_RETURN(uint8_t kind, r.Read<uint8_t>());
      if (kind > static_cast<uint8_t>(EpochKind::kDelta)) {
        return Status(StatusCode::kDataLoss, "bad epoch kind in meta");
      }
      s.kind = static_cast<EpochKind>(kind);
      SDG_ASSIGN_OR_RETURN(s.base_epoch, r.Read<uint64_t>());
      SDG_ASSIGN_OR_RETURN(uint32_t chain_len, r.Read<uint32_t>());
      s.chain.reserve(std::min<size_t>(chain_len, r.remaining()));
      for (uint32_t j = 0; j < chain_len; ++j) {
        ChainLink link;
        SDG_ASSIGN_OR_RETURN(link.epoch, r.Read<uint64_t>());
        SDG_ASSIGN_OR_RETURN(link.num_chunks, r.Read<uint32_t>());
        SDG_ASSIGN_OR_RETURN(uint8_t link_kind, r.Read<uint8_t>());
        if (link_kind > static_cast<uint8_t>(EpochKind::kDelta)) {
          return Status(StatusCode::kDataLoss, "bad epoch kind in chain");
        }
        link.kind = static_cast<EpochKind>(link_kind);
        s.chain.push_back(link);
      }
    }
    if (s.chain.empty()) {
      // v1 meta (or a v2 writer that skipped the chain): one full link.
      s.kind = EpochKind::kFull;
      s.base_epoch = m.epoch;
      s.chain.push_back({m.epoch, s.num_chunks, EpochKind::kFull});
    }
    m.states.push_back(std::move(s));
  }
  return m;
}

std::vector<uint8_t> CheckpointMeta::ToBytes() const {
  BinaryWriter w;
  Serialize(w);
  return std::move(w).TakeBuffer();
}

Result<CheckpointMeta> CheckpointMeta::FromBytes(const std::vector<uint8_t>& bytes) {
  BinaryReader r(bytes);
  return Deserialize(r);
}

}  // namespace sdg::checkpoint
