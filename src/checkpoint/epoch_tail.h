// EpochTail: the delta-checkpoint fan-out buffer feeding read replicas.
//
// The worker already cuts checkpoint epochs (full bases or dirty-record
// deltas) for durability; the serve path re-uses the same serialized bytes
// as a replication stream. Per partition, the tail retains the latest base
// epoch plus every delta cut since it, so that
//
//   - a live subscriber receives each epoch once, in order, and
//   - a (re)connecting subscriber replays base + deltas and is caught up
//     without the owner re-serializing anything.
//
// When the retained delta run grows past `max_deltas` the tail asks the
// publisher (NeedsBase) to cut the next epoch as a full base, bounding both
// replay length and memory. SerializeEpochBlobs turns a quiesced backend
// into the chunk blobs the tail stores — the same streamed v2 chunk frames
// the migration path ships, assembled in memory instead of written to the
// backup store.
#ifndef SDG_CHECKPOINT_EPOCH_TAIL_H_
#define SDG_CHECKPOINT_EPOCH_TAIL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/state/state_backend.h"

namespace sdg::checkpoint {

// Serialises `backend` into `num_chunks` in-memory chunk blobs (streamed v2
// frames). With `delta` set, emits the dirty records + tombstones of the
// active checkpoint (the caller drives the Begin/End/Resolve protocol);
// otherwise the full contents. The backend must be quiescent or checkpoint-
// frozen for the duration.
Result<std::vector<std::vector<uint8_t>>> SerializeEpochBlobs(
    const state::StateBackend& backend, const std::string& name,
    uint32_t num_chunks, bool delta, uint8_t codec);

class EpochTail {
 public:
  struct Entry {
    uint64_t epoch = 0;
    bool base = false;
    std::vector<std::vector<uint8_t>> chunks;
  };

  explicit EpochTail(size_t max_deltas = 8) : max_deltas_(max_deltas) {}

  // True when the next published epoch must be a full base: nothing retained
  // yet, or the delta run since the last base is at its cap.
  bool NeedsBase() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() || deltas_ >= max_deltas_;
  }

  void PushBase(uint64_t epoch, std::vector<std::vector<uint8_t>> chunks) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    deltas_ = 0;
    entries_.push_back(Entry{epoch, /*base=*/true, std::move(chunks)});
  }

  // False when the tail has no base to anchor the delta (the caller should
  // have consulted NeedsBase); the delta is dropped and the next epoch must
  // re-base.
  bool PushDelta(uint64_t epoch, std::vector<std::vector<uint8_t>> chunks) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.empty()) return false;
    ++deltas_;
    entries_.push_back(Entry{epoch, /*base=*/false, std::move(chunks)});
    return true;
  }

  // Base + deltas in epoch order, for catching up a fresh subscriber.
  std::vector<Entry> Replay() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {entries_.begin(), entries_.end()};
  }

  // Drops everything (partition migrated away).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    deltas_ = 0;
  }

  uint64_t latest_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() ? 0 : entries_.back().epoch;
  }

 private:
  mutable std::mutex mu_;
  const size_t max_deltas_;
  std::deque<Entry> entries_;
  size_t deltas_ = 0;
};

}  // namespace sdg::checkpoint

#endif  // SDG_CHECKPOINT_EPOCH_TAIL_H_
