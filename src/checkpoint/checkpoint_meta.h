// Checkpoint metadata: everything besides SE contents a node needs to resume.
//
// Per §5, a checkpoint records, for every task instance on the node, the
// vector timestamp of the last data item applied from each input dataflow
// (so upstream replay can resume exactly past the snapshot) and the
// instance's emit clock (so re-emitted items carry the same timestamps and
// downstream duplicate detection works).
#ifndef SDG_CHECKPOINT_CHECKPOINT_META_H_
#define SDG_CHECKPOINT_CHECKPOINT_META_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/status.h"

namespace sdg::checkpoint {

struct SourceTimestamp {
  uint32_t task = 0;
  uint32_t instance = 0;
  uint64_t ts = 0;
};

struct TaskInstanceMeta {
  uint32_t task = 0;
  uint32_t instance = 0;
  uint64_t emit_clock = 0;
  std::vector<SourceTimestamp> last_seen;
};

// v2 meta frame marker. v1 metas start directly with the epoch u64; epochs
// never reach 0x5344474D, so the first u32 disambiguates the two framings.
inline constexpr uint32_t kMetaMagic = 0x5344474D;  // "SDGM"
inline constexpr uint32_t kMetaVersion2 = 2;

// Whether an epoch's chunks for an SE instance hold the full state or only
// the records changed/erased since the previous epoch.
enum class EpochKind : uint8_t { kFull = 0, kDelta = 1 };

// One epoch of a base+delta chain: where to find an SE instance's chunks and
// how to apply them. Chains are applied strictly in order (base first).
struct ChainLink {
  uint64_t epoch = 0;
  uint32_t num_chunks = 0;
  EpochKind kind = EpochKind::kFull;
};

struct StateInstanceMeta {
  uint32_t state = 0;
  uint32_t instance = 0;
  uint32_t num_chunks = 0;
  uint64_t record_count = 0;
  // v2: this epoch's kind, the epoch of the chain's full base, and the full
  // restore chain ending with this epoch. v1 metas deserialize with a
  // synthesized single-link full chain, so restore code never branches.
  EpochKind kind = EpochKind::kFull;
  uint64_t base_epoch = 0;
  std::vector<ChainLink> chain;
};

struct CheckpointMeta {
  uint64_t epoch = 0;
  std::vector<TaskInstanceMeta> tasks;
  std::vector<StateInstanceMeta> states;

  // Earliest epoch any state's chain reaches back to; pruning below this
  // would break restore. Equals `epoch` when every state is a full base.
  uint64_t MinChainEpoch() const;

  void Serialize(BinaryWriter& w) const;
  static Result<CheckpointMeta> Deserialize(BinaryReader& r);
  std::vector<uint8_t> ToBytes() const;
  static Result<CheckpointMeta> FromBytes(const std::vector<uint8_t>& bytes);
};

}  // namespace sdg::checkpoint

#endif  // SDG_CHECKPOINT_CHECKPOINT_META_H_
