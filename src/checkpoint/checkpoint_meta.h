// Checkpoint metadata: everything besides SE contents a node needs to resume.
//
// Per §5, a checkpoint records, for every task instance on the node, the
// vector timestamp of the last data item applied from each input dataflow
// (so upstream replay can resume exactly past the snapshot) and the
// instance's emit clock (so re-emitted items carry the same timestamps and
// downstream duplicate detection works).
#ifndef SDG_CHECKPOINT_CHECKPOINT_META_H_
#define SDG_CHECKPOINT_CHECKPOINT_META_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/status.h"

namespace sdg::checkpoint {

struct SourceTimestamp {
  uint32_t task = 0;
  uint32_t instance = 0;
  uint64_t ts = 0;
};

struct TaskInstanceMeta {
  uint32_t task = 0;
  uint32_t instance = 0;
  uint64_t emit_clock = 0;
  std::vector<SourceTimestamp> last_seen;
};

struct StateInstanceMeta {
  uint32_t state = 0;
  uint32_t instance = 0;
  uint32_t num_chunks = 0;
  uint64_t record_count = 0;
};

struct CheckpointMeta {
  uint64_t epoch = 0;
  std::vector<TaskInstanceMeta> tasks;
  std::vector<StateInstanceMeta> states;

  void Serialize(BinaryWriter& w) const;
  static Result<CheckpointMeta> Deserialize(BinaryReader& r);
  std::vector<uint8_t> ToBytes() const;
  static Result<CheckpointMeta> FromBytes(const std::vector<uint8_t>& bytes);
};

}  // namespace sdg::checkpoint

#endif  // SDG_CHECKPOINT_CHECKPOINT_META_H_
