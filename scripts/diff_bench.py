#!/usr/bin/env python3
"""Diff freshly produced BENCH_*.json against the committed trajectory.

For every BENCH_*.json present in --current that also exists in --committed,
rows are matched by their "config" value and two kinds of fields are gated:

  * throughput: fields starting with "items_per_sec" — a drop of more than
    --tolerance (default 0.2, i.e. >20% regression) fails the run;
  * tail latency: fields starting with "p99" — an INCREASE beyond
    --lat-tolerance (default 1.0, i.e. p99 more than doubling) fails the
    run. The wide band absorbs open-loop tail noise while still catching a
    batching/admission change that wrecks the SLO story.

Improvements and new rows/files are fine.

Rows are only comparable when they were measured under the same shape: any
field that is not a measured metric (keys, nodes, reps, hw_threads, ...) must
match on both sides, otherwise the row is skipped with a per-row warning.
This is what makes the CI smoke runs (SDG_BENCH_SCALE / different core
counts) safe to diff against the full-run numbers committed from the dev box
— mismatched rows are reported as skipped, never as regressions. But a diff
that skips more than half of the baseline rows is not a diff at all (a
renamed shape field silently waves every regression through), so that fails
the run outright.

Usage: scripts/diff_bench.py [--committed DIR] [--current DIR] [--tolerance F]
"""

import argparse
import glob
import json
import os
import sys

# Fields with one of these prefixes are measurements; everything else in a row
# describes the workload shape and must match for the row to be comparable.
METRIC_PREFIXES = (
    "items_per_sec",
    "wall_ms",
    "bytes_per_epoch",
    "records_per_epoch",
    "full_over",
    "speedup",
    "overhead",
    "mib_per_sec",
    "send_p",
    "items",        # raw items moved (covers items_per_sec too)
    "peak_unacked",
    "bytes",
    # Serve front door (BENCH_serve.json).
    "p50",
    "p99",
    "overloaded",
    "errors",
    "replica_answers",
    "final_batch",
)


def is_metric(field):
    return any(field.startswith(p) for p in METRIC_PREFIXES)


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    return {row["config"]: row for row in data if "config" in row}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--committed", default=".", help="dir with committed BENCH_*.json")
    ap.add_argument("--current", default="build/bench", help="dir with fresh BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="max allowed fractional drop in items_per_sec fields")
    ap.add_argument("--lat-tolerance", type=float, default=1.0,
                    help="max allowed fractional increase in p99 fields")
    ap.add_argument("--max-skip-frac", type=float, default=0.5,
                    help="fail when more than this fraction of baseline rows "
                         "is skipped as shape-mismatched (smoke runs, which "
                         "mismatch on purpose, pass 1.0)")
    args = ap.parse_args()

    current_files = sorted(glob.glob(os.path.join(args.current, "BENCH_*.json")))
    if not current_files:
        print(f"diff_bench: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 1

    failures = []
    compared = 0
    baseline_rows = 0
    skipped_rows = 0
    for cur_path in current_files:
        name = os.path.basename(cur_path)
        ref_path = os.path.join(args.committed, name)
        if not os.path.exists(ref_path):
            print(f"  {name}: no committed baseline, skipped")
            continue
        ref_rows = load_rows(ref_path)
        cur_rows = load_rows(cur_path)
        for config, ref in ref_rows.items():
            baseline_rows += 1
            cur = cur_rows.get(config)
            if cur is None:
                print(f"  {name}:{config}: row missing from current run")
                failures.append(f"{name}:{config} disappeared")
                continue
            mismatch = [
                f"{k} {ref[k]} -> {cur[k]}"
                for k in sorted(set(ref) & set(cur))
                if k != "config" and not is_metric(k) and ref[k] != cur[k]
            ]
            if mismatch:
                print(f"  WARNING {name}:{config}: shape mismatch "
                      f"({', '.join(mismatch)}), not comparable, skipped",
                      file=sys.stderr)
                skipped_rows += 1
                continue
            for field, ref_val in ref.items():
                gate_up = field.startswith("items_per_sec")
                gate_down = field.startswith("p99")
                if not gate_up and not gate_down:
                    continue
                cur_val = cur.get(field)
                if not isinstance(cur_val, (int, float)) or ref_val <= 0:
                    continue
                ratio = cur_val / ref_val
                compared += 1
                status = "ok"
                if gate_up and ratio < 1.0 - args.tolerance:
                    status = "REGRESSION"
                elif gate_down and ratio > 1.0 + args.lat_tolerance:
                    status = "REGRESSION"
                if status == "REGRESSION":
                    failures.append(
                        f"{name}:{config}.{field} {ref_val:.0f} -> {cur_val:.0f} "
                        f"({ratio:.2f}x)")
                print(f"  {name}:{config}.{field}: {ref_val:.0f} -> "
                      f"{cur_val:.0f} ({ratio:.2f}x) {status}")

    if baseline_rows > 0 and skipped_rows > baseline_rows * args.max_skip_frac:
        failures.append(
            f"{skipped_rows}/{baseline_rows} baseline rows skipped as "
            f"shape-mismatched — the diff gated almost nothing")
    print(f"diff_bench: {compared} fields compared, {skipped_rows}/"
          f"{baseline_rows} rows skipped, {len(failures)} failures "
          f"(tolerance {args.tolerance:.0%})")
    for f in failures:
        print(f"  FAIL {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
