#!/usr/bin/env bash
# Loopback smoke tests of the TCP transport (docs/runtime.md).
#
# Phase 1 — kill/restart: starts a receiver, streams lines into it from a
# sender process, SIGKILLs the receiver after its first checkpoint
# (mid-stream), restarts it on the same port from the snapshot, and asserts:
#   - the sender exits 0 (every line durably acknowledged),
#   - the receiver's final word count is exactly 2 * LINES — reconnect-replay
#     lost nothing, and the snapshot watermark + dedup double-counted nothing.
#
# Phase 2 — live scale-out (runs when HEAD_BIN and WORKER_BIN are given):
# three processes — an elastic head, a deliberately slow worker that gets
# all partitions, and a second worker that joins mid-stream. The head must
# shed at least one partition to the newcomer via live migration with a
# cutover pause under 250 ms, then verify the durable word counts exactly.
#
# Phase 3 — serve front door (runs when KV_GATEWAY_BIN and KV_LOADGEN_BIN are
# given): kv_gateway + a --serve worker + kv_loadgen's deterministic smoke
# sequence (fill / delete / overload burst / drain / verify). Asserts the
# burst sheds with kOverloaded (nonzero SHED), bounded-stale reads get
# replica answers, and the exact KV contents survive the drain.
#
# Usage: net_smoke.sh [cluster_wordcount] [lines] [elastic_wordcount]
#                     [elastic_worker] [kv_gateway] [kv_loadgen]
set -u

BIN="${1:-build/examples/cluster_wordcount}"
LINES="${2:-300000}"
HEAD_BIN="${3:-}"
WORKER_BIN="${4:-}"
KV_GATEWAY_BIN="${5:-}"
KV_LOADGEN_BIN="${6:-}"
PORT="${SDG_SMOKE_PORT:-7741}"
WORK="$(mktemp -d /tmp/sdg_net_smoke.XXXXXX)"
SNAP="$WORK/wordcount.snap"
RECV_PID=""
SEND_PID=""
HEAD_PID=""
W1_PID=""
W2_PID=""
GW_PID=""
SW_PID=""

# Children are launched under setsid so each leads its own process group:
# the EXIT trap can then group-kill them, taking any grandchildren (worker
# subprocesses) along instead of orphaning them when a run times out.
SETSID=""
command -v setsid >/dev/null 2>&1 && SETSID="setsid"

kill_group() {  # kill_group <pid> — group kill, falling back to the pid
  [ -n "$1" ] || return 0
  kill -9 -- "-$1" 2>/dev/null || kill -9 "$1" 2>/dev/null
}

cleanup() {
  kill_group "$RECV_PID"
  kill_group "$SEND_PID"
  kill_group "$HEAD_PID"
  kill_group "$W1_PID"
  kill_group "$W2_PID"
  kill_group "$GW_PID"
  kill_group "$SW_PID"
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "NET SMOKE FAILED: $1" >&2
  echo "--- receiver 1 ---" >&2; cat "$WORK/recv1.log" >&2 || true
  echo "--- receiver 2 ---" >&2; cat "$WORK/recv2.log" >&2 || true
  echo "--- sender ---" >&2; cat "$WORK/send.log" >&2 || true
  exit 1
}

wait_for() {  # wait_for <pattern> <file> <timeout_s>
  local deadline=$(( $(date +%s) + $3 ))
  while ! grep -q "$1" "$2" 2>/dev/null; do
    [ "$(date +%s)" -ge "$deadline" ] && return 1
    sleep 0.05
  done
  return 0
}

# count_data_socks <port> — ESTABLISHED dialer-side sockets to <port>, from
# /proc/net/tcp. A loopback connection appears twice (one line per endpoint);
# matching only the REMOTE port counts each connection exactly once.
count_data_socks() {
  local hexport
  hexport="$(printf '%04X' "$1")"
  awk -v p=":$hexport" '$3 ~ (p "$") && $4 == "01"' /proc/net/tcp 2>/dev/null \
    | wc -l
}

# assert_one_data_sock <port> <who> — the multiplexed transport's core
# promise: ALL (entry, partition) channels to one worker share ONE socket.
# Polls until the count is nonzero and stable (the head connects channels as
# partitions flip), then requires exactly 1. A count that settles above 1
# means channels fell back to per-channel sockets — the O(entries x
# partitions) regression this guard exists to catch.
assert_one_data_sock() {
  local n=0 prev=-1 deadline=$(( $(date +%s) + 15 ))
  while [ "$(date +%s)" -lt "$deadline" ]; do
    n="$(count_data_socks "$1")"
    if [ "$n" -gt 0 ] && [ "$n" = "$prev" ]; then
      break
    fi
    prev="$n"
    sleep 0.3
  done
  [ "$n" = "1" ] || return 1
  echo "MUX SOCKETS OK: $2 data port $1 has exactly 1 shared socket"
  return 0
}

[ -x "$BIN" ] || fail "binary '$BIN' not found or not executable"

# Incarnation 1: receive until the first durable checkpoint, then die hard.
$SETSID "$BIN" --role receiver --port "$PORT" --snapshot "$SNAP" \
  --ckpt-interval-ms 100 > "$WORK/recv1.log" 2>&1 &
RECV_PID=$!
wait_for "LISTENING" "$WORK/recv1.log" 10 || fail "receiver 1 never listened"

$SETSID "$BIN" --role sender --port "$PORT" --lines "$LINES" --batch 64 \
  > "$WORK/send.log" 2>&1 &
SEND_PID=$!

wait_for "CKPT" "$WORK/recv1.log" 30 || fail "receiver 1 never checkpointed"
kill -9 "$RECV_PID"
wait "$RECV_PID" 2>/dev/null
KILLED_AT="$(grep CKPT "$WORK/recv1.log" | tail -1)"
echo "receiver killed mid-stream after: $KILLED_AT"

# Incarnation 2: same port, restored from the snapshot. The sender's
# reconnect handshake learns the durable watermark and replays past it.
sleep 0.2
$SETSID "$BIN" --role receiver --port "$PORT" --snapshot "$SNAP" \
  --ckpt-interval-ms 100 > "$WORK/recv2.log" 2>&1 &
RECV_PID=$!
wait_for "restored snapshot" "$WORK/recv2.log" 10 \
  || fail "receiver 2 did not restore the snapshot"

wait "$SEND_PID"
SEND_RC=$?
SEND_PID=""
[ "$SEND_RC" -eq 0 ] || fail "sender exited $SEND_RC"

# The final checkpoint must cover the last timestamp with the exact mass.
# If the kill happened to land after everything was already durable, receiver 2
# restores w=LINES and (correctly) never re-checkpoints; the mass was then
# asserted by receiver 1's final CKPT line instead.
WANT_WORDS=$(( LINES * 2 ))
if wait_for "CKPT w=$LINES " "$WORK/recv2.log" 30; then
  FINAL="$(grep "CKPT w=$LINES " "$WORK/recv2.log" | tail -1)"
elif grep -q "restored snapshot w=$LINES" "$WORK/recv2.log" 2>/dev/null; then
  FINAL="$(grep "CKPT w=$LINES " "$WORK/recv1.log" | tail -1)"
  [ -n "$FINAL" ] || fail "snapshot covered w=$LINES but no matching CKPT line"
else
  fail "receiver 2 never reached watermark $LINES"
fi
echo "$FINAL" | grep -q "words=$WANT_WORDS$" \
  || fail "word mass mismatch: got '$FINAL', want words=$WANT_WORDS"

echo "NET SMOKE PASSED: $LINES lines survived a mid-stream receiver kill"
echo "  killed after : $KILLED_AT"
echo "  final        : $FINAL"

# ---------------------------------------------------------------------------
# Phase 2: three-process live scale-out.
# ---------------------------------------------------------------------------
if [ -z "$HEAD_BIN" ] || [ -z "$WORKER_BIN" ]; then
  echo "SCALE SMOKE SKIPPED: no head/worker binaries given"
  exit 0
fi

# Phase 1 leaves its second receiver incarnation running; retire it.
[ -n "$RECV_PID" ] && kill -9 "$RECV_PID" 2>/dev/null
wait "$RECV_PID" 2>/dev/null
RECV_PID=""

fail2() {
  echo "SCALE SMOKE FAILED: $1" >&2
  echo "--- head ---" >&2; cat "$WORK/head.log" >&2 || true
  echo "--- worker 1 ---" >&2; cat "$WORK/w1.log" >&2 || true
  echo "--- worker 2 ---" >&2; cat "$WORK/w2.log" >&2 || true
  exit 1
}

[ -x "$HEAD_BIN" ] || fail2 "binary '$HEAD_BIN' not found or not executable"
[ -x "$WORKER_BIN" ] || fail2 "binary '$WORKER_BIN' not found or not executable"

BACKUP="$WORK/elastic_backup"
SCALE_LINES="${SDG_SCALE_LINES:-4000}"

$SETSID "$HEAD_BIN" --backup "$BACKUP" --lines "$SCALE_LINES" \
  > "$WORK/head.log" 2>&1 &
HEAD_PID=$!
wait_for "HEAD port=" "$WORK/head.log" 10 || fail2 "head never started"
HEAD_PORT="$(grep -o 'HEAD port=[0-9]*' "$WORK/head.log" | head -1 | cut -d= -f2)"

# Worker 1: deliberately slow (2 ms per item) — it gets all the partitions
# and becomes the straggler the head scales out from.
$SETSID "$WORKER_BIN" --app wordcount --head-port "$HEAD_PORT" --id 1 \
  --backup "$BACKUP" --slow-us 2000 --ckpt-interval-ms 0 \
  > "$WORK/w1.log" 2>&1 &
W1_PID=$!
wait_for "ASSIGNED" "$WORK/head.log" 15 || fail2 "partitions never assigned"

# Every partition just flipped to worker 1: all of its channels must share
# one multiplexed socket, not one socket per (entry, partition).
wait_for "READY port=" "$WORK/w1.log" 15 || fail2 "worker 1 never printed READY"
W1_PORT="$(grep -o 'READY port=[0-9]*' "$WORK/w1.log" | head -1 | cut -d= -f2)"
assert_one_data_sock "$W1_PORT" "worker 1" \
  || fail2 "worker 1 data port $W1_PORT has $(count_data_socks "$W1_PORT") sockets, want 1 (mux)"

# Worker 2 joins mid-stream; the head's management loop must notice the
# imbalance and live-migrate at least one partition onto it.
$SETSID "$WORKER_BIN" --app wordcount --head-port "$HEAD_PORT" --id 2 \
  --backup "$BACKUP" --ckpt-interval-ms 0 \
  > "$WORK/w2.log" 2>&1 &
W2_PID=$!

wait "$HEAD_PID"
HEAD_RC=$?
HEAD_PID=""
[ "$HEAD_RC" -eq 0 ] || fail2 "head exited $HEAD_RC"

MIGRATED="$(grep 'MIGRATED n=' "$WORK/head.log" | tail -1)"
[ -n "$MIGRATED" ] || fail2 "no MIGRATED line in head log"
PAUSE_MS="$(echo "$MIGRATED" | grep -o 'pause_ms=[0-9-]*' | cut -d= -f2)"
[ -n "$PAUSE_MS" ] || fail2 "no pause_ms in '$MIGRATED'"
[ "$PAUSE_MS" -lt 250 ] || fail2 "cutover pause ${PAUSE_MS}ms >= 250ms"

COUNTS="$(grep 'COUNTS OK' "$WORK/head.log" | tail -1)"
[ -n "$COUNTS" ] || fail2 "head never verified the durable counts"

kill "$W1_PID" "$W2_PID" 2>/dev/null
wait "$W1_PID" "$W2_PID" 2>/dev/null
W1_PID=""; W2_PID=""

echo "SCALE SMOKE PASSED: live migration to a mid-stream joiner"
echo "  migration : $MIGRATED"
echo "  counts    : $COUNTS"

# ---------------------------------------------------------------------------
# Phase 3: serve front door — gateway + --serve worker + loadgen smoke.
# ---------------------------------------------------------------------------
if [ -z "$KV_GATEWAY_BIN" ] || [ -z "$KV_LOADGEN_BIN" ]; then
  echo "SERVE SMOKE SKIPPED: no kv_gateway/kv_loadgen binaries given"
  exit 0
fi

fail3() {
  echo "SERVE SMOKE FAILED: $1" >&2
  echo "--- gateway ---" >&2; cat "$WORK/gw.log" >&2 || true
  echo "--- serve worker ---" >&2; cat "$WORK/sw.log" >&2 || true
  echo "--- loadgen ---" >&2; cat "$WORK/lg.log" >&2 || true
  exit 1
}

[ -x "$KV_GATEWAY_BIN" ] || fail3 "binary '$KV_GATEWAY_BIN' not found or not executable"
[ -x "$KV_LOADGEN_BIN" ] || fail3 "binary '$KV_LOADGEN_BIN' not found or not executable"

SERVE_BACKUP="$WORK/serve_backup"

# Tiny admission watermarks so the loadgen's pipelined burst reliably crosses
# high water and must be shed with kOverloaded.
$SETSID "$KV_GATEWAY_BIN" --backup "$SERVE_BACKUP" --high-water 64 --low-water 8 \
  > "$WORK/gw.log" 2>&1 &
GW_PID=$!
wait_for "HEAD port=" "$WORK/gw.log" 10 || fail3 "gateway never started"
GW_PORT="$(grep -o 'HEAD port=[0-9]*' "$WORK/gw.log" | head -1 | cut -d= -f2)"

$SETSID "$WORKER_BIN" --app kv --serve --head-port "$GW_PORT" --id 1 \
  --backup "$SERVE_BACKUP" --ckpt-interval-ms 100 \
  > "$WORK/sw.log" 2>&1 &
SW_PID=$!
wait_for "SERVING" "$WORK/gw.log" 20 || fail3 "fleet never assembled"

# Serving fleet: put/get/del x partitions all ride ONE socket to the worker.
wait_for "READY port=" "$WORK/sw.log" 15 || fail3 "serve worker never printed READY"
SW_PORT="$(grep -o 'READY port=[0-9]*' "$WORK/sw.log" | head -1 | cut -d= -f2)"
assert_one_data_sock "$SW_PORT" "serve worker" \
  || fail3 "serve worker data port $SW_PORT has $(count_data_socks "$SW_PORT") sockets, want 1 (mux)"

# Deterministic fill / delete / overload burst / drain / verify. The loadgen
# exits nonzero if the burst never sheds, no stale get is answered from a
# replica, or any key reads back a wrong value after the drain.
"$KV_LOADGEN_BIN" --port "$GW_PORT" --mode smoke > "$WORK/lg.log" 2>&1
LG_RC=$?
[ "$LG_RC" -eq 0 ] || fail3 "loadgen smoke exited $LG_RC"

SHED_LINE="$(grep 'SHED n=' "$WORK/lg.log" | tail -1)"
SHED_N="$(echo "$SHED_LINE" | grep -o 'n=[0-9]*' | cut -d= -f2)"
[ -n "$SHED_N" ] && [ "$SHED_N" -gt 0 ] \
  || fail3 "overload burst never shed: '$SHED_LINE'"
KV_LINE="$(grep 'KV OK' "$WORK/lg.log" | tail -1)"
[ -n "$KV_LINE" ] || fail3 "loadgen never verified the KV contents"
REPLICA_LINE="$(grep 'REPLICA hits=' "$WORK/lg.log" | tail -1)"

# Clean gateway shutdown prints a final GWSTATS line.
kill -TERM "$GW_PID" 2>/dev/null
wait "$GW_PID" 2>/dev/null
GW_PID=""
GWSTATS="$(grep 'GWSTATS' "$WORK/gw.log" | tail -1)"
[ -n "$GWSTATS" ] || fail3 "gateway exited without GWSTATS"

kill "$SW_PID" 2>/dev/null
wait "$SW_PID" 2>/dev/null
SW_PID=""

echo "SERVE SMOKE PASSED: shed under overload, exact contents after drain"
echo "  shed    : $SHED_LINE"
echo "  replica : $REPLICA_LINE"
echo "  verify  : $KV_LINE"
echo "  gateway : $GWSTATS"
exit 0
