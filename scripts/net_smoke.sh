#!/usr/bin/env bash
# Two-process loopback smoke test of the TCP transport (docs/runtime.md).
#
# Starts a receiver, streams lines into it from a sender process, SIGKILLs
# the receiver after its first checkpoint (mid-stream), restarts it on the
# same port from the snapshot, and asserts:
#   - the sender exits 0 (every line durably acknowledged),
#   - the receiver's final word count is exactly 2 * LINES — reconnect-replay
#     lost nothing, and the snapshot watermark + dedup double-counted nothing.
#
# Usage: net_smoke.sh [path-to-cluster_wordcount] [lines]
set -u

BIN="${1:-build/examples/cluster_wordcount}"
LINES="${2:-300000}"
PORT="${SDG_SMOKE_PORT:-7741}"
WORK="$(mktemp -d /tmp/sdg_net_smoke.XXXXXX)"
SNAP="$WORK/wordcount.snap"
RECV_PID=""
SEND_PID=""

cleanup() {
  [ -n "$RECV_PID" ] && kill -9 "$RECV_PID" 2>/dev/null
  [ -n "$SEND_PID" ] && kill -9 "$SEND_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "NET SMOKE FAILED: $1" >&2
  echo "--- receiver 1 ---" >&2; cat "$WORK/recv1.log" >&2 || true
  echo "--- receiver 2 ---" >&2; cat "$WORK/recv2.log" >&2 || true
  echo "--- sender ---" >&2; cat "$WORK/send.log" >&2 || true
  exit 1
}

wait_for() {  # wait_for <pattern> <file> <timeout_s>
  local deadline=$(( $(date +%s) + $3 ))
  while ! grep -q "$1" "$2" 2>/dev/null; do
    [ "$(date +%s)" -ge "$deadline" ] && return 1
    sleep 0.05
  done
  return 0
}

[ -x "$BIN" ] || fail "binary '$BIN' not found or not executable"

# Incarnation 1: receive until the first durable checkpoint, then die hard.
"$BIN" --role receiver --port "$PORT" --snapshot "$SNAP" \
  --ckpt-interval-ms 100 > "$WORK/recv1.log" 2>&1 &
RECV_PID=$!
wait_for "LISTENING" "$WORK/recv1.log" 10 || fail "receiver 1 never listened"

"$BIN" --role sender --port "$PORT" --lines "$LINES" --batch 64 \
  > "$WORK/send.log" 2>&1 &
SEND_PID=$!

wait_for "CKPT" "$WORK/recv1.log" 30 || fail "receiver 1 never checkpointed"
kill -9 "$RECV_PID"
wait "$RECV_PID" 2>/dev/null
KILLED_AT="$(grep CKPT "$WORK/recv1.log" | tail -1)"
echo "receiver killed mid-stream after: $KILLED_AT"

# Incarnation 2: same port, restored from the snapshot. The sender's
# reconnect handshake learns the durable watermark and replays past it.
sleep 0.2
"$BIN" --role receiver --port "$PORT" --snapshot "$SNAP" \
  --ckpt-interval-ms 100 > "$WORK/recv2.log" 2>&1 &
RECV_PID=$!
wait_for "restored snapshot" "$WORK/recv2.log" 10 \
  || fail "receiver 2 did not restore the snapshot"

wait "$SEND_PID"
SEND_RC=$?
SEND_PID=""
[ "$SEND_RC" -eq 0 ] || fail "sender exited $SEND_RC"

# The final checkpoint must cover the last timestamp with the exact mass.
# If the kill happened to land after everything was already durable, receiver 2
# restores w=LINES and (correctly) never re-checkpoints; the mass was then
# asserted by receiver 1's final CKPT line instead.
WANT_WORDS=$(( LINES * 2 ))
if wait_for "CKPT w=$LINES " "$WORK/recv2.log" 30; then
  FINAL="$(grep "CKPT w=$LINES " "$WORK/recv2.log" | tail -1)"
elif grep -q "restored snapshot w=$LINES" "$WORK/recv2.log" 2>/dev/null; then
  FINAL="$(grep "CKPT w=$LINES " "$WORK/recv1.log" | tail -1)"
  [ -n "$FINAL" ] || fail "snapshot covered w=$LINES but no matching CKPT line"
else
  fail "receiver 2 never reached watermark $LINES"
fi
echo "$FINAL" | grep -q "words=$WANT_WORDS$" \
  || fail "word mass mismatch: got '$FINAL', want words=$WANT_WORDS"

echo "NET SMOKE PASSED: $LINES lines survived a mid-stream receiver kill"
echo "  killed after : $KILLED_AT"
echo "  final        : $FINAL"
exit 0
