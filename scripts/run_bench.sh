#!/usr/bin/env bash
# Build and run the perf-trajectory benches, leaving their BENCH_*.json next
# to the binaries (copy into the repo root to update the checked-in
# trajectory).
#
#   scripts/run_bench.sh [hotpath|ckpt|state|net|migrate|serve|spill|all] [--short]
#
# --short runs the CI smoke configuration (tiny scale / window, 1 rep) —
# seconds instead of minutes, shape-check only; numbers are not comparable
# to the checked-in artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

# Some benches fork worker subprocesses; group-kill our whole process tree on
# exit so an aborted or timed-out run cannot leave orphans behind. Re-exec as
# a process-group leader first (when invoked from CI we inherit the parent's
# group, which must not be signalled), then TERM the group on exit with the
# script itself ignoring that TERM.
if command -v setsid >/dev/null 2>&1 \
    && [ "$(ps -o pgid= -p $$ | tr -d ' ')" != "$$" ]; then
  exec setsid "$0" "$@"
fi
cleanup() {
  local rc=$?
  trap - EXIT INT
  trap '' TERM
  kill -- -$$ 2>/dev/null || true
  exit "$rc"
}
trap cleanup EXIT TERM INT

target="${1:-all}"
short=0
for arg in "$@"; do
  [[ "$arg" == "--short" ]] && short=1
done

if [[ $short -eq 1 ]]; then
  export SDG_BENCH_SECONDS="${SDG_BENCH_SECONDS:-0.2}"
  export SDG_BENCH_SCALE="${SDG_BENCH_SCALE:-0.05}"
  export SDG_BENCH_REPS="${SDG_BENCH_REPS:-1}"
fi

cmake -B build -S . >/dev/null
case "$target" in
  hotpath)
    cmake --build build -j "$(nproc)" --target micro_hotpath >/dev/null
    (cd build/bench && ./micro_hotpath)
    ;;
  ckpt)
    cmake --build build -j "$(nproc)" --target micro_ckpt >/dev/null
    (cd build/bench && ./micro_ckpt)
    ;;
  state)
    cmake --build build -j "$(nproc)" --target micro_state >/dev/null
    (cd build/bench && ./micro_state)
    ;;
  net)
    cmake --build build -j "$(nproc)" --target micro_net >/dev/null
    (cd build/bench && ./micro_net)
    ;;
  migrate)
    cmake --build build -j "$(nproc)" --target micro_migrate >/dev/null
    (cd build/bench && ./micro_migrate)
    ;;
  serve)
    cmake --build build -j "$(nproc)" --target micro_serve >/dev/null
    (cd build/bench && ./micro_serve)
    ;;
  spill)
    cmake --build build -j "$(nproc)" --target micro_spill >/dev/null
    (cd build/bench && ./micro_spill)
    ;;
  all)
    cmake --build build -j "$(nproc)" --target micro_hotpath micro_ckpt micro_state micro_net micro_migrate micro_serve micro_spill >/dev/null
    (cd build/bench && ./micro_hotpath && ./micro_ckpt && ./micro_state && ./micro_net && ./micro_migrate && ./micro_serve && ./micro_spill)
    ;;
  *)
    echo "usage: $0 [hotpath|ckpt|state|net|migrate|serve|spill|all] [--short]" >&2
    exit 2
    ;;
esac

# Compare the fresh artifacts against the committed trajectory (>20%
# items_per_sec regression fails; see scripts/diff_bench.py). Short-mode
# numbers use tiny windows, so treat local failures as a hint, not a verdict
# — and every short-mode row is shape-mismatched on purpose, so only full
# runs enforce the too-many-rows-skipped gate.
if [[ $short -eq 1 ]]; then
  python3 scripts/diff_bench.py --committed . --current build/bench --max-skip-frac 1.0
else
  python3 scripts/diff_bench.py --committed . --current build/bench
fi
