#!/usr/bin/env python3
"""Splices measured bench output into EXPERIMENTS.md.

Reads bench_output.txt (as produced by `for b in build/bench/*; do ...`),
extracts each figure/ablation block, and replaces the corresponding
<FIGn>/<ABLn> placeholder (or previously spliced block) in EXPERIMENTS.md.
"""

import re
import sys

MAPPING = {
    "fig05_cf_ratio": "FIG5",
    "fig06_kv_state": "FIG6",
    "fig07_kv_scale": "FIG7",
    "fig08_wc_window": "FIG8",
    "fig09_lr_scale": "FIG9",
    "fig10_stragglers": "FIG10",
    "fig11_recovery": "FIG11",
    "fig12_sync_vs_async": "FIG12",
    "fig13_ckpt_overhead": "FIG13",
    "ablate_dispatch": "ABL1",
    "ablate_chunks": "ABL2",
    "ablate_serialization": "ABL3",
}


def extract_blocks(bench_text):
    blocks = {}
    current = None
    lines = []
    for line in bench_text.splitlines():
        m = re.match(r"^### (\S+)", line)
        if m:
            if current in MAPPING:
                blocks[MAPPING[current]] = "\n".join(lines).strip()
            current = m.group(1)
            lines = []
        else:
            lines.append(line)
    if current in MAPPING:
        blocks[MAPPING[current]] = "\n".join(lines).strip()
    return blocks


def main():
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    doc_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    with open(bench_path) as f:
        blocks = extract_blocks(f.read())
    with open(doc_path) as f:
        doc = f.read()
    for tag, block in blocks.items():
        placeholder = f"<{tag}>"
        if placeholder in doc:
            doc = doc.replace(placeholder, block)
        else:
            # Re-splice: replace the fenced block following the tag comment.
            marker = f"<!-- {tag} -->"
            pattern = re.compile(
                re.escape(marker) + r"\n```\n.*?\n```", re.DOTALL)
            if pattern.search(doc):
                doc = pattern.sub(marker + "\n```\n" + block + "\n```", doc)
    # Tag each fenced block so future runs can re-splice.
    for tag in blocks:
        doc = doc.replace(f"```\n<{tag}>", f"```\n<{tag}>")
    with open(doc_path, "w") as f:
        f.write(doc)
    missing = [t for t in MAPPING.values() if f"<{t}>" in doc]
    if missing:
        print(f"warning: unfilled placeholders: {missing}")
    print(f"updated {doc_path} with {len(blocks)} measured blocks")


if __name__ == "__main__":
    main()
